//! The hypercube system: many nodes plus the hyperspace router.
//!
//! Paper §1-2: nodes are "arranged in a hypercube configuration" with
//! inter-node communication "handled by means of a hyperspace router"; the
//! published system sizing is 64 nodes for 40 GFLOPS and 128 GB. The
//! system model runs per-node programs concurrently (crossbeam scoped
//! threads — real parallelism for simulation wall-clock) and accounts
//! simulated communication time with the e-cube router model.

use crate::exec::ExecError;
use crate::node::{NodeSim, RunOptions, RunStats};
use nsc_arch::{HypercubeConfig, KnowledgeBase, NodeId, PlaneId};
use nsc_microcode::MicroProgram;
use std::fmt;

/// An execution failure attributed to the node it happened on — what a
/// distributed run needs to report *which* member of the cube failed.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeExecError {
    /// The failing node.
    pub node: NodeId,
    /// What its executor reported.
    pub error: ExecError,
}

impl fmt::Display for NodeExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node {} failed: {}", self.node, self.error)
    }
}

impl std::error::Error for NodeExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// An open overlappable communication window: per-node budgets of
/// concurrently issued compute that messages may hide under.
#[derive(Debug)]
struct CommWindow {
    /// Remaining hideable nanoseconds, indexed by node.
    budget: Vec<u64>,
    /// Total nanoseconds hidden since the window opened.
    hidden: u64,
}

/// A hypercube of simulated nodes.
#[derive(Debug)]
pub struct NscSystem {
    /// Cube topology and router model.
    pub cube: HypercubeConfig,
    nodes: Vec<NodeSim>,
    /// Simulated communication time accumulated so far across the whole
    /// system, in nanoseconds, counting every message once (the serialized
    /// view; per-node overlap-aware accounting lives in each node's
    /// [`crate::PerfCounters::comm_ns`]).
    pub comm_ns: u64,
    /// The open overlap window, if any.
    comm_window: Option<CommWindow>,
}

impl NscSystem {
    /// A system of `2^dimension` identical nodes.
    pub fn new(cube: HypercubeConfig, kb: &KnowledgeBase) -> Self {
        let nodes = (0..cube.nodes()).map(|_| NodeSim::new(kb.clone())).collect();
        NscSystem { cube, nodes, comm_ns: 0, comm_window: None }
    }

    /// A system over *existing* nodes — the machine-park lease path.
    ///
    /// An aligned sub-cube of a hypercube is itself a hypercube: local
    /// address `i` of the sub-cube is physical node `base | i`, and the
    /// XOR distance between two members never touches the shared high
    /// bits, so hop counts (and therefore every router charge) inside
    /// the leased system equal those same messages on the full machine.
    /// That is what lets a job service carve one big `NscSystem` into
    /// disjoint sub-systems, run them concurrently from different
    /// threads, and still report figures identical to standalone runs of
    /// the same cube size. Counters and memory travel with the nodes:
    /// lifetime accounting continues across leases.
    ///
    /// # Panics
    ///
    /// Panics unless `nodes.len() == cube.nodes()`.
    pub fn from_nodes(cube: HypercubeConfig, nodes: Vec<NodeSim>) -> Self {
        assert_eq!(
            nodes.len(),
            cube.nodes(),
            "a dimension-{} system wants {} nodes",
            cube.dimension,
            cube.nodes()
        );
        NscSystem { cube, nodes, comm_ns: 0, comm_window: None }
    }

    /// Tear the system down into its nodes plus the serialized
    /// communication time it accumulated — the return half of a
    /// machine-park lease ([`NscSystem::from_nodes`] is the lend half).
    /// Node counters keep everything the lease charged.
    pub fn into_nodes(self) -> (Vec<NodeSim>, u64) {
        (self.nodes, self.comm_ns)
    }

    /// Open an overlappable communication window: until
    /// [`NscSystem::close_comm_window`], each listed node may hide up to
    /// its budget of message nanoseconds under compute it has already
    /// issued concurrently (the phased sweep drivers measure the interior
    /// phase and pass its per-node elapsed time here). Hidden time lands
    /// in [`crate::PerfCounters::comm_hidden_ns`] and does not extend the
    /// node's wall clock; unlisted nodes hide nothing. Windows model one
    /// concurrent compute phase and therefore do not nest.
    ///
    /// # Panics
    ///
    /// Panics if a window is already open.
    pub fn open_comm_window(&mut self, budgets: &[(NodeId, u64)]) {
        assert!(self.comm_window.is_none(), "overlap windows do not nest");
        let mut budget = vec![0u64; self.nodes.len()];
        for &(node, ns) in budgets {
            budget[node.index()] = ns;
        }
        self.comm_window = Some(CommWindow { budget, hidden: 0 });
    }

    /// Close the open overlap window (a no-op when none is open) and
    /// return the total message nanoseconds it hid across all nodes.
    pub fn close_comm_window(&mut self) -> u64 {
        self.comm_window.take().map(|w| w.hidden).unwrap_or(0)
    }

    /// Charge `ns` of message time to a node, hiding whatever fits in the
    /// node's remaining overlap-window budget.
    fn charge_comm(&mut self, node: NodeId, ns: u64) {
        let counters = &mut self.nodes[node.index()].counters;
        counters.comm_ns += ns;
        if let Some(win) = &mut self.comm_window {
            let hide = ns.min(win.budget[node.index()]);
            win.budget[node.index()] -= hide;
            win.hidden += hide;
            counters.comm_hidden_ns += hide;
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// One node.
    pub fn node(&self, id: NodeId) -> &NodeSim {
        &self.nodes[id.index()]
    }

    /// One node, mutably.
    pub fn node_mut(&mut self, id: NodeId) -> &mut NodeSim {
        &mut self.nodes[id.index()]
    }

    /// All nodes, in node order.
    pub fn nodes(&self) -> &[NodeSim] {
        &self.nodes
    }

    /// All nodes, mutably — the handle batch drivers use to run distinct
    /// programs across the cube on scoped threads.
    pub fn nodes_mut(&mut self) -> &mut [NodeSim] {
        &mut self.nodes
    }

    /// Run one program on every node concurrently (each node gets the same
    /// program; per-node data lives in its own planes). Returns per-node
    /// stats in node order; on failure, reports the lowest-numbered node
    /// that failed and what its executor said.
    pub fn run_on_all(
        &mut self,
        prog: &MicroProgram,
        opts: &RunOptions,
    ) -> Result<Vec<RunStats>, NodeExecError> {
        let progs: Vec<&MicroProgram> = (0..self.nodes.len()).map(|_| prog).collect();
        self.run_each(&progs, opts)
    }

    /// Run a *different* program on every node concurrently — program `i`
    /// on node `i` (the shape a domain-decomposed solver needs, where each
    /// node's program streams its own subdomain). `progs` must supply one
    /// program per node. Returns per-node stats in node order; on failure,
    /// reports the lowest-numbered failing node.
    pub fn run_each(
        &mut self,
        progs: &[&MicroProgram],
        opts: &RunOptions,
    ) -> Result<Vec<RunStats>, NodeExecError> {
        assert_eq!(
            progs.len(),
            self.nodes.len(),
            "run_each wants one program per node ({} supplied, {} nodes)",
            progs.len(),
            self.nodes.len()
        );
        let mut results: Vec<Option<Result<RunStats, ExecError>>> =
            (0..self.nodes.len()).map(|_| None).collect();
        // The vendored scope is std-backed: a child panic propagates as a
        // panic from scope() itself, so the Ok() here is total — no node
        // result is ever silently dropped.
        let _ = crossbeam::thread::scope(|scope| {
            for ((node, prog), slot) in
                self.nodes.iter_mut().zip(progs.iter()).zip(results.iter_mut())
            {
                scope.spawn(move |_| {
                    *slot = Some(node.run_program(prog, opts));
                });
            }
        });
        results
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.expect("every spawned node fills its slot")
                    .map_err(|error| NodeExecError { node: NodeId(i as u16), error })
            })
            .collect()
    }

    /// Transfer `len` words from a plane of one node to a plane of another,
    /// charging the e-cube route cost. Returns the message time in ns.
    #[allow(clippy::too_many_arguments)] // one argument per route endpoint coordinate
    pub fn exchange(
        &mut self,
        from: NodeId,
        from_plane: PlaneId,
        from_base: u64,
        to: NodeId,
        to_plane: PlaneId,
        to_base: u64,
        len: u64,
    ) -> u64 {
        let data = self.nodes[from.index()].mem.plane(from_plane).read_vec(from_base, len);
        self.nodes[to.index()].mem.plane_mut(to_plane).write_slice(to_base, &data);
        let ns = self.cube.message_ns(from, to, len);
        self.comm_ns += ns;
        // Both endpoints spend the message time (the sender streams it out,
        // the receiver waits for it); messages between *different* node
        // pairs overlap, which is what per-node accounting captures.
        self.charge_comm(from, ns);
        if to != from {
            self.charge_comm(to, ns);
        }
        ns
    }

    /// Swap one *face* — many equal-length word chunks, scattered through
    /// each node's plane — between two nodes as a single full-duplex
    /// sendrecv. The router streams a face as one message (one startup,
    /// total face words), not one message per chunk: the DMA engines
    /// gather and scatter the strided chunks at the endpoints. Chunk `i`
    /// read at `a_send[i]` lands at `b_recv[i]` and vice versa. Returns
    /// the per-endpoint time in ns (the serialized `comm_ns` counts both
    /// directions).
    #[allow(clippy::too_many_arguments)] // one argument per route endpoint coordinate
    pub fn exchange_face_bidirectional(
        &mut self,
        a: NodeId,
        a_plane: PlaneId,
        a_send: &[u64],
        a_recv: &[u64],
        b: NodeId,
        b_plane: PlaneId,
        b_send: &[u64],
        b_recv: &[u64],
        chunk_len: u64,
    ) -> u64 {
        assert!(
            a_send.len() == b_recv.len() && b_send.len() == a_recv.len(),
            "face chunk lists must pair up"
        );
        let gather = |mem: &crate::NodeMemory, plane: PlaneId, offs: &[u64]| -> Vec<f64> {
            let mut out = Vec::with_capacity(offs.len() * chunk_len as usize);
            for &off in offs {
                out.extend(mem.plane(plane).read_vec(off, chunk_len));
            }
            out
        };
        let ab = gather(&self.nodes[a.index()].mem, a_plane, a_send);
        let ba = gather(&self.nodes[b.index()].mem, b_plane, b_send);
        let mut scatter = |node: NodeId, plane: PlaneId, offs: &[u64], data: &[f64]| {
            let mem = &mut self.nodes[node.index()].mem;
            for (i, &off) in offs.iter().enumerate() {
                let lo = i * chunk_len as usize;
                mem.plane_mut(plane).write_slice(off, &data[lo..lo + chunk_len as usize]);
            }
        };
        scatter(b, b_plane, b_recv, &ab);
        scatter(a, a_plane, a_recv, &ba);
        let words = chunk_len * a_send.len().max(b_send.len()) as u64;
        let ns = self.cube.message_ns(a, b, words);
        self.comm_ns += 2 * ns;
        self.charge_comm(a, ns);
        if b != a {
            self.charge_comm(b, ns);
        }
        ns
    }

    /// Global max-reduction of a cache scalar across all nodes, charged as
    /// a dimension-ordered butterfly (log2(n) exchange rounds of one word).
    /// Returns `(max value, reduction time in ns)`.
    pub fn global_max_cache_scalar(&mut self, cache: nsc_arch::CacheId, offset: u64) -> (f64, u64) {
        let members: Vec<NodeId> = (0..self.nodes.len()).map(|i| NodeId(i as u16)).collect();
        self.pool_max_cache_scalar(&members, cache, offset)
    }

    /// Max-reduction of a cache scalar across an explicit pool of nodes —
    /// the members of one sub-cube embedding — charged as a butterfly over
    /// the pool (log2(pool) exchange rounds of one word). Nodes outside
    /// the pool neither contribute a value nor pay for the reduction.
    /// Returns `(max value, reduction time in ns)`.
    pub fn pool_max_cache_scalar(
        &mut self,
        members: &[NodeId],
        cache: nsc_arch::CacheId,
        offset: u64,
    ) -> (f64, u64) {
        let value = members
            .iter()
            .map(|&m| self.nodes[m.index()].mem.cache(cache).read(0, offset))
            .fold(f64::NEG_INFINITY, f64::max);
        // Butterfly: every round crosses one cube dimension (distance-1
        // links), one word per message; every member participates in every
        // round, so each member is charged the full butterfly.
        let rounds = members.len().next_power_of_two().trailing_zeros() as u64;
        let ns = self.cube.router.message_ns(1, 1) * rounds;
        self.comm_ns += ns;
        for &m in members {
            self.charge_comm(m, ns);
        }
        (value, ns)
    }

    /// Total simulated time: the slowest node's compute-plus-communication.
    /// Per-node accounting lets concurrent messages between disjoint node
    /// pairs overlap instead of serializing system-wide.
    pub fn simulated_seconds(&self) -> f64 {
        let clock = self.nodes[0].kb.config().clock_hz;
        self.nodes.iter().map(|n| n.counters.seconds_with_comm(clock)).fold(0.0, f64::max)
    }

    /// Aggregate counters (cycles = max across nodes, work summed).
    pub fn aggregate_counters(&self) -> crate::PerfCounters {
        let mut total = crate::PerfCounters::default();
        for n in &self.nodes {
            total.absorb(&n.counters);
        }
        total
    }

    /// Aggregate achieved MFLOPS across the system (total flops over the
    /// slowest node's elapsed time).
    pub fn aggregate_mflops(&self) -> f64 {
        let secs = self.simulated_seconds();
        if secs == 0.0 {
            return 0.0;
        }
        let flops: u64 = self.nodes.iter().map(|n| n.counters.flops).sum();
        flops as f64 / secs / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_arch::{FuId, FuOp, InPort, MachineConfig, SinkRef, SourceRef};
    use nsc_microcode::{FuField, MicroInstruction, PlaneDmaField, ProgramBuilder};

    fn small_system(dim: u32) -> NscSystem {
        let kb = KnowledgeBase::new(MachineConfig::test_small());
        NscSystem::new(HypercubeConfig::new(dim), &kb)
    }

    fn double_program(kb: &KnowledgeBase, count: u32) -> MicroProgram {
        let mut b = ProgramBuilder::new(kb, "double");
        let mut ins = MicroInstruction::empty(kb);
        *ins.fu_mut(FuId(0)) = FuField {
            enabled: true,
            op: FuOp::Mul,
            in_a: nsc_microcode::FuInputSel::Switch,
            in_b: nsc_microcode::FuInputSel::Constant(0),
            const_slot: 0,
            preload: Some(2.0),
        };
        *ins.plane_rd_mut(PlaneId(0)) = PlaneDmaField::contiguous(0, count);
        *ins.plane_wr_mut(PlaneId(1)) = PlaneDmaField::contiguous(0, count);
        ins.switch.route(kb, SourceRef::PlaneRead(PlaneId(0)), SinkRef::FuIn(FuId(0), InPort::A));
        ins.switch.route(kb, SourceRef::Fu(FuId(0)), SinkRef::PlaneWrite(PlaneId(1)));
        b.push(ins);
        b.finish()
    }

    #[test]
    fn nodes_run_concurrently_with_private_data() {
        let mut sys = small_system(2); // 4 nodes
        for i in 0..4u16 {
            sys.node_mut(NodeId(i)).mem.planes[0].write_slice(0, &[i as f64 + 1.0; 16]);
        }
        let kb = sys.node(NodeId(0)).kb.clone();
        let prog = double_program(&kb, 16);
        let stats = sys.run_on_all(&prog, &RunOptions::default()).expect("all nodes run");
        assert_eq!(stats.len(), 4);
        for i in 0..4u16 {
            assert_eq!(
                sys.node(NodeId(i)).mem.planes[1].read(7),
                2.0 * (i as f64 + 1.0),
                "node {i} doubled its own data"
            );
        }
    }

    #[test]
    fn exchange_moves_data_and_charges_the_router() {
        let mut sys = small_system(3);
        sys.node_mut(NodeId(0)).mem.planes[0].write_slice(100, &[1.0, 2.0, 3.0]);
        // 0 -> 7 is 3 hops in a 3-cube.
        let ns = sys.exchange(NodeId(0), PlaneId(0), 100, NodeId(7), PlaneId(2), 0, 3);
        assert_eq!(sys.node(NodeId(7)).mem.planes[2].read_vec(0, 3), vec![1.0, 2.0, 3.0]);
        let expect = sys.cube.router.message_ns(3, 3);
        assert_eq!(ns, expect);
        assert_eq!(sys.comm_ns, expect);
        assert_eq!(sys.node(NodeId(0)).counters.comm_ns, expect, "sender charged");
        assert_eq!(sys.node(NodeId(7)).counters.comm_ns, expect, "receiver charged");
        assert_eq!(sys.node(NodeId(3)).counters.comm_ns, 0, "bystanders are not");
    }

    /// An instruction whose plane write is never fed: the executor hangs.
    fn hanging_program(kb: &KnowledgeBase, count: u32) -> MicroProgram {
        let mut b = ProgramBuilder::new(kb, "hang");
        let mut ins = MicroInstruction::empty(kb);
        *ins.plane_wr_mut(PlaneId(1)) = PlaneDmaField::contiguous(0, count);
        b.push(ins);
        b.finish()
    }

    #[test]
    fn run_each_runs_a_distinct_program_per_node() {
        let mut sys = small_system(1);
        let kb = sys.node(NodeId(0)).kb.clone();
        for i in 0..2u16 {
            sys.node_mut(NodeId(i)).mem.planes[0].write_slice(0, &[3.0; 8]);
        }
        let long = double_program(&kb, 8);
        let short = double_program(&kb, 2);
        let stats = sys.run_each(&[&long, &short], &RunOptions::default()).expect("both run");
        assert_eq!(stats.len(), 2);
        assert_eq!(sys.node(NodeId(0)).mem.planes[1].read(7), 6.0, "node 0 ran the long stream");
        assert_eq!(sys.node(NodeId(1)).mem.planes[1].read(7), 0.0, "node 1 ran the short one");
        assert_eq!(sys.node(NodeId(1)).mem.planes[1].read(1), 6.0);
    }

    #[test]
    fn node_failures_name_the_failing_node() {
        let mut sys = small_system(2);
        let kb = sys.node(NodeId(0)).kb.clone();
        let good = double_program(&kb, 4);
        let bad = hanging_program(&kb, 4);
        let err = sys
            .run_each(&[&good, &good, &bad, &good], &RunOptions::default())
            .expect_err("node 2 hangs");
        assert_eq!(err.node, NodeId(2));
        assert!(matches!(err.error, ExecError::Hang { .. }), "{err}");
        assert!(err.to_string().contains("N2"), "{err}");

        // The same program everywhere: the lowest-numbered node reports.
        let err = sys.run_on_all(&bad, &RunOptions::default()).expect_err("all hang");
        assert_eq!(err.node, NodeId(0));
        use std::error::Error;
        assert!(err.source().unwrap().downcast_ref::<ExecError>().is_some());
    }

    #[test]
    fn bidirectional_exchange_swaps_blocks_for_one_message_time() {
        // A one-chunk face is the plain contiguous sendrecv.
        let mut sys = small_system(2);
        sys.node_mut(NodeId(1)).mem.planes[0].write_slice(0, &[1.0, 2.0]);
        sys.node_mut(NodeId(3)).mem.planes[0].write_slice(10, &[7.0, 8.0]);
        let ns = sys.exchange_face_bidirectional(
            NodeId(1),
            PlaneId(0),
            &[0],  // send base
            &[20], // recv base
            NodeId(3),
            PlaneId(0),
            &[10],
            &[30],
            2,
        );
        assert_eq!(sys.node(NodeId(3)).mem.planes[0].read_vec(30, 2), vec![1.0, 2.0]);
        assert_eq!(sys.node(NodeId(1)).mem.planes[0].read_vec(20, 2), vec![7.0, 8.0]);
        let msg = sys.cube.router.message_ns(1, 2);
        assert_eq!(ns, msg);
        assert_eq!(sys.comm_ns, 2 * msg, "both messages count in the serialized view");
        assert_eq!(sys.node(NodeId(1)).counters.comm_ns, msg, "full-duplex overlap per node");
        assert_eq!(sys.node(NodeId(3)).counters.comm_ns, msg);
    }

    #[test]
    fn face_exchange_swaps_strided_chunks_for_one_message_time() {
        let mut sys = small_system(2);
        // Node 1 sends a "column": 3 chunks of 2 words at stride 8.
        sys.node_mut(NodeId(1)).mem.planes[0].write_slice(0, &[1.0, 2.0]);
        sys.node_mut(NodeId(1)).mem.planes[0].write_slice(8, &[3.0, 4.0]);
        sys.node_mut(NodeId(1)).mem.planes[0].write_slice(16, &[5.0, 6.0]);
        sys.node_mut(NodeId(3)).mem.planes[0].write_slice(100, &[9.0, 8.0]);
        sys.node_mut(NodeId(3)).mem.planes[0].write_slice(108, &[7.0, 6.0]);
        sys.node_mut(NodeId(3)).mem.planes[0].write_slice(116, &[5.0, 4.0]);
        let ns = sys.exchange_face_bidirectional(
            NodeId(1),
            PlaneId(0),
            &[0, 8, 16],
            &[40, 48, 56],
            NodeId(3),
            PlaneId(0),
            &[100, 108, 116],
            &[140, 148, 156],
            2,
        );
        assert_eq!(sys.node(NodeId(3)).mem.planes[0].read_vec(140, 2), vec![1.0, 2.0]);
        assert_eq!(sys.node(NodeId(3)).mem.planes[0].read_vec(156, 2), vec![5.0, 6.0]);
        assert_eq!(sys.node(NodeId(1)).mem.planes[0].read_vec(40, 2), vec![9.0, 8.0]);
        assert_eq!(sys.node(NodeId(1)).mem.planes[0].read_vec(56, 2), vec![5.0, 4.0]);
        // One message of the whole 6-word face per direction, not three.
        let msg = sys.cube.router.message_ns(1, 6);
        assert_eq!(ns, msg);
        assert_eq!(sys.comm_ns, 2 * msg);
        assert_eq!(sys.node(NodeId(1)).counters.comm_ns, msg);
        assert_eq!(sys.node(NodeId(3)).counters.comm_ns, msg);
    }

    #[test]
    fn comm_window_hides_message_time_up_to_the_budget() {
        let mut sys = small_system(2);
        let msg = sys.cube.router.message_ns(1, 100);
        // Node 1 can hide 1.5 messages' worth; node 3 nothing.
        sys.open_comm_window(&[(NodeId(1), msg + msg / 2)]);
        sys.exchange(NodeId(1), PlaneId(0), 0, NodeId(3), PlaneId(0), 0, 100);
        sys.exchange(NodeId(1), PlaneId(0), 0, NodeId(3), PlaneId(0), 200, 100);
        let hidden = sys.close_comm_window();
        assert_eq!(hidden, msg + msg / 2, "budget fully consumed");
        let n1 = sys.node(NodeId(1)).counters;
        assert_eq!(n1.comm_ns, 2 * msg);
        assert_eq!(n1.comm_hidden_ns, msg + msg / 2, "second message only half hides");
        assert_eq!(sys.node(NodeId(3)).counters.comm_hidden_ns, 0, "no budget, no hiding");
        // Wall clock: node 1 pays only the remainder, node 3 pays in full.
        let clock = sys.node(NodeId(0)).kb.config().clock_hz;
        let n3 = sys.node(NodeId(3)).counters;
        assert!(n1.seconds_with_comm(clock) < n3.seconds_with_comm(clock));
        // Outside a window nothing hides.
        sys.exchange(NodeId(1), PlaneId(0), 0, NodeId(3), PlaneId(0), 400, 100);
        assert_eq!(sys.node(NodeId(1)).counters.comm_hidden_ns, msg + msg / 2);
        assert_eq!(sys.close_comm_window(), 0, "closing a closed window is a no-op");
    }

    #[test]
    #[should_panic(expected = "do not nest")]
    fn comm_windows_do_not_nest() {
        let mut sys = small_system(1);
        sys.open_comm_window(&[(NodeId(0), 10)]);
        sys.open_comm_window(&[(NodeId(1), 10)]);
    }

    #[test]
    fn global_max_reduces_across_nodes() {
        let mut sys = small_system(2);
        for i in 0..4u16 {
            sys.node_mut(NodeId(i)).mem.caches[0].write(0, 0, i as f64 * 10.0);
        }
        let (v, ns) = sys.global_max_cache_scalar(nsc_arch::CacheId(0), 0);
        assert_eq!(v, 30.0);
        assert_eq!(ns, 2 * sys.cube.router.message_ns(1, 1), "log2(4) rounds");
    }

    #[test]
    fn simulated_time_is_max_compute_plus_comm() {
        let mut sys = small_system(1);
        let kb = sys.node(NodeId(0)).kb.clone();
        let prog = double_program(&kb, 64);
        sys.run_on_all(&prog, &RunOptions::default()).expect("runs");
        let compute_only = sys.simulated_seconds();
        assert!(compute_only > 0.0);
        sys.exchange(NodeId(0), PlaneId(0), 0, NodeId(1), PlaneId(0), 0, 1000);
        assert!(sys.simulated_seconds() > compute_only, "comm adds simulated time");
    }

    #[test]
    fn aggregate_mflops_scale_with_nodes() {
        // The same per-node work on 1 vs 4 nodes: ~4x the aggregate rate.
        let kb = KnowledgeBase::new(MachineConfig::test_small());
        let prog = double_program(&kb, 1024);
        let mut sys1 = small_system(0);
        sys1.run_on_all(&prog, &RunOptions::default()).expect("runs");
        let mut sys4 = small_system(2);
        sys4.run_on_all(&prog, &RunOptions::default()).expect("runs");
        let r1 = sys1.aggregate_mflops();
        let r4 = sys4.aggregate_mflops();
        assert!(r4 > 3.5 * r1, "expected ~4x: {r1} vs {r4}");
    }
}
