//! One simulated NSC node: sequencer + executor + storage + counters.
//!
//! Paper §2: "A central sequencer provides high-level control flow."
//! [`NodeSim::run_program`] walks a [`MicroProgram`]: each instruction runs
//! to its completion interrupt, then the sequencer field is honoured —
//! loop-counter presets, the interrupt-evaluated conditional branch
//! (reading a scalar from a data cache, e.g. the Jacobi residual), and the
//! unconditional control (fall through / jump / counted loop / halt).

use crate::counters::PerfCounters;
use crate::exec::{execute_instruction, ExecError, SourceTrace};
use crate::kernel::CompiledKernel;
use crate::memory::NodeMemory;
use nsc_arch::KnowledgeBase;
use nsc_microcode::{MicroProgram, SeqCtl};

/// Why a program stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltReason {
    /// An explicit HALT sequencer control.
    Halt,
    /// Control fell off the end of the instruction list.
    EndOfProgram,
    /// The safety limit on executed instructions was reached.
    MaxInstructions,
}

/// Options for a program run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Safety cap on executed instructions (loops!).
    pub max_instructions: u64,
    /// Keep per-instruction source traces (visual debugger feed); capped
    /// at `trace_cap` entries.
    pub trace: bool,
    /// Maximum retained traces.
    pub trace_cap: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions { max_instructions: 1_000_000, trace: false, trace_cap: 1024 }
    }
}

/// Result of a program run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Why execution stopped.
    pub halted: HaltReason,
    /// Instructions executed (counting loop iterations).
    pub executed: u64,
    /// Per-instruction traces `(pc, trace)` when requested.
    pub traces: Vec<(usize, SourceTrace)>,
}

/// One simulated node.
#[derive(Debug, Clone)]
pub struct NodeSim {
    /// Machine description this node simulates.
    pub kb: KnowledgeBase,
    /// Planes and caches.
    pub mem: NodeMemory,
    /// Cumulative performance counters.
    pub counters: PerfCounters,
    loop_counters: [u32; 16],
}

impl NodeSim {
    /// A fresh node for the given machine.
    pub fn new(kb: KnowledgeBase) -> Self {
        let mem = NodeMemory::new(kb.config());
        NodeSim { kb, mem, counters: PerfCounters::default(), loop_counters: [0; 16] }
    }

    /// A fresh 1988 node.
    pub fn nsc_1988() -> Self {
        Self::new(KnowledgeBase::nsc_1988())
    }

    /// Reset counters (memory is kept).
    pub fn reset_counters(&mut self) {
        self.counters = PerfCounters::default();
    }

    /// Run a program from instruction 0 through the interpreter.
    pub fn run_program(
        &mut self,
        prog: &MicroProgram,
        opts: &RunOptions,
    ) -> Result<RunStats, ExecError> {
        self.run_program_with_kernel(prog, None, opts)
    }

    /// Run a program, executing instructions through a pre-compiled
    /// [`CompiledKernel`] where one is supplied and covers them.
    ///
    /// Specialized instructions produce bit-identical memory effects,
    /// counters and traces to the interpreter; unspecialized ones (and any
    /// program the kernel was not built for) interpret as usual.
    pub fn run_program_with_kernel(
        &mut self,
        prog: &MicroProgram,
        kernel: Option<&CompiledKernel>,
        opts: &RunOptions,
    ) -> Result<RunStats, ExecError> {
        // A kernel for a different program would index the wrong plans.
        let kernel = kernel.filter(|k| k.instructions() == prog.instrs.len());
        let mut pc: usize = 0;
        let mut executed: u64 = 0;
        let mut traces = Vec::new();
        loop {
            if pc >= prog.instrs.len() {
                return Ok(RunStats { halted: HaltReason::EndOfProgram, executed, traces });
            }
            if executed >= opts.max_instructions {
                return Ok(RunStats { halted: HaltReason::MaxInstructions, executed, traces });
            }
            let ins = &prog.instrs[pc];
            // Loop-counter preset happens at instruction start (headers).
            if let Some((ctr, val)) = ins.seq.set_counter {
                self.loop_counters[ctr as usize & 15] = val;
            }
            let trace = match kernel.and_then(|k| k.plan(pc)) {
                Some(plan) => {
                    crate::kernel::run_plan(plan, &mut self.mem, &mut self.counters, opts.trace)
                }
                None => execute_instruction(&self.kb, ins, &mut self.mem, &mut self.counters)?,
            };
            executed += 1;
            if opts.trace && traces.len() < opts.trace_cap {
                traces.push((pc, trace));
            }
            // Conditional branch first (the interrupt scheme evaluates the
            // condition at pipeline completion)...
            let mut next = None;
            if let Some(c) = &ins.seq.cond {
                let v = self.mem.cache(c.cache).read(0, c.offset as u64);
                if c.cmp.eval(v, c.threshold) {
                    next = Some(c.target as usize);
                }
            }
            // ...then the unconditional control.
            pc = match next {
                Some(t) => t,
                None => match ins.seq.ctl {
                    SeqCtl::Next => pc + 1,
                    SeqCtl::Jump(t) => t as usize,
                    SeqCtl::Halt => {
                        return Ok(RunStats { halted: HaltReason::Halt, executed, traces })
                    }
                    SeqCtl::DecJnz { ctr, target } => {
                        let c = &mut self.loop_counters[ctr as usize & 15];
                        *c = c.saturating_sub(1);
                        if *c > 0 {
                            target as usize
                        } else {
                            pc + 1
                        }
                    }
                },
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_arch::{CacheId, FuId, FuOp, InPort, PlaneId, SinkRef, SourceRef};
    use nsc_microcode::{
        CacheDmaField, CmpKind, CondBranch, FuField, FuInputSel, MicroInstruction, PlaneDmaField,
        ProgramBuilder,
    };

    fn kb() -> KnowledgeBase {
        KnowledgeBase::nsc_1988()
    }

    /// An instruction that doubles `count` words from plane 0 into plane 0
    /// (reads plane 0, writes plane 1, then a second instruction copies
    /// back — or simpler: ping-pongs by parameterization).
    fn scale_instr(kb: &KnowledgeBase, from: u8, to: u8, count: u32, k: f64) -> MicroInstruction {
        let mut ins = MicroInstruction::empty(kb);
        *ins.fu_mut(FuId(0)) = FuField {
            enabled: true,
            op: FuOp::Mul,
            in_a: FuInputSel::Switch,
            in_b: FuInputSel::Constant(0),
            const_slot: 0,
            preload: Some(k),
        };
        *ins.plane_rd_mut(PlaneId(from)) = PlaneDmaField::contiguous(0, count);
        *ins.plane_wr_mut(PlaneId(to)) = PlaneDmaField::contiguous(0, count);
        ins.switch.route(
            kb,
            SourceRef::PlaneRead(PlaneId(from)),
            SinkRef::FuIn(FuId(0), InPort::A),
        );
        ins.switch.route(kb, SourceRef::Fu(FuId(0)), SinkRef::PlaneWrite(PlaneId(to)));
        ins
    }

    #[test]
    fn straight_line_program_halts_at_end() {
        let kb = kb();
        let mut node = NodeSim::new(kb.clone());
        node.mem.planes[0].write_slice(0, &[1.0, 2.0, 3.0]);
        let mut b = ProgramBuilder::new(&kb, "scale-twice");
        b.push(scale_instr(&kb, 0, 1, 3, 2.0));
        b.push(scale_instr(&kb, 1, 2, 3, 10.0));
        let prog = b.finish();
        let stats = node.run_program(&prog, &RunOptions::default()).expect("runs");
        assert_eq!(stats.halted, HaltReason::EndOfProgram);
        assert_eq!(stats.executed, 2);
        assert_eq!(node.mem.planes[2].read_vec(0, 3), vec![20.0, 40.0, 60.0]);
    }

    #[test]
    fn counted_loop_executes_exactly_n_times() {
        let kb = kb();
        let mut node = NodeSim::new(kb.clone());
        node.mem.planes[0].write_slice(0, &[1.0]);
        // header presets ctr0=5; body doubles plane0[0] in place via plane1.
        let mut b = ProgramBuilder::new(&kb, "loop");
        let mut header = MicroInstruction::empty(&kb);
        header.seq.set_counter = Some((0, 5));
        b.push(header);
        b.push(scale_instr(&kb, 0, 1, 1, 2.0));
        let i2 = b.push(scale_instr(&kb, 1, 0, 1, 1.0));
        b.instr_mut(i2).seq.ctl = nsc_microcode::SeqCtl::DecJnz { ctr: 0, target: 1 };
        let prog = b.finish();
        let stats = node.run_program(&prog, &RunOptions::default()).expect("runs");
        // 5 iterations of x2 => 32.
        assert_eq!(node.mem.planes[0].read(0), 32.0);
        assert_eq!(stats.executed, 1 + 5 * 2);
    }

    #[test]
    fn conditional_branch_reads_cache_scalar() {
        let kb = kb();
        let mut node = NodeSim::new(kb.clone());
        node.mem.planes[0].write_slice(0, &[100.0]);
        // Loop: halve plane0[0] (through plane1 and back), write the value
        // into cache0[0]; repeat until < 1.0.
        let mut b = ProgramBuilder::new(&kb, "halve-until");
        let mut header = MicroInstruction::empty(&kb);
        header.seq.set_counter = Some((0, 100));
        b.push(header);
        let mut halve = scale_instr(&kb, 0, 1, 1, 0.5);
        // Also capture the halved value into cache 0.
        *halve.cache_wr_mut(CacheId(0)) = CacheDmaField::scalar_capture(0);
        halve.switch.route(&kb, SourceRef::Fu(FuId(0)), SinkRef::CacheWrite(CacheId(0)));
        b.push(halve);
        let back = b.push(scale_instr(&kb, 1, 0, 1, 1.0));
        b.instr_mut(back).seq.cond = Some(CondBranch {
            cache: CacheId(0),
            offset: 0,
            cmp: CmpKind::Lt,
            threshold: 1.0,
            target: 4, // past the end -> halts
        });
        b.instr_mut(back).seq.ctl = nsc_microcode::SeqCtl::DecJnz { ctr: 0, target: 1 };
        let prog = b.finish();
        let stats = node.run_program(&prog, &RunOptions::default()).expect("runs");
        // 100 -> 50 -> ... -> 0.78125 after 7 halvings.
        assert!((node.mem.planes[0].read(0) - 0.78125).abs() < 1e-12);
        assert_eq!(stats.executed, 1 + 7 * 2, "stopped by convergence, not the counter");
    }

    #[test]
    fn max_instruction_guard_stops_infinite_loops() {
        let kb = kb();
        let mut node = NodeSim::new(kb.clone());
        let mut b = ProgramBuilder::new(&kb, "forever");
        let i0 = b.push(MicroInstruction::empty(&kb));
        b.instr_mut(i0).seq.ctl = nsc_microcode::SeqCtl::Jump(0);
        let prog = b.finish();
        let stats = node
            .run_program(&prog, &RunOptions { max_instructions: 50, ..Default::default() })
            .expect("guard trips cleanly");
        assert_eq!(stats.halted, HaltReason::MaxInstructions);
        assert_eq!(stats.executed, 50);
    }

    #[test]
    fn traces_capture_per_instruction_values() {
        let kb = kb();
        let mut node = NodeSim::new(kb.clone());
        node.mem.planes[0].write_slice(0, &[4.0, 9.0]);
        let mut b = ProgramBuilder::new(&kb, "probe");
        b.push(scale_instr(&kb, 0, 1, 2, 3.0));
        let prog = b.finish();
        let stats = node
            .run_program(&prog, &RunOptions { trace: true, ..Default::default() })
            .expect("runs");
        assert_eq!(stats.traces.len(), 1);
        let (pc, trace) = &stats.traces[0];
        assert_eq!(*pc, 0);
        assert_eq!(trace.value_of(&kb, SourceRef::Fu(FuId(0))), Some(27.0));
    }
}
