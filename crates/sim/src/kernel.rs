//! Compile-time specialization of microinstructions into native sweep
//! kernels — the host fast path.
//!
//! The lockstep interpreter in [`crate::exec`] walks every pipeline one
//! clock at a time, re-dispatching every component per cycle. That is the
//! right model for the machine but a poor use of the host: a Jacobi sweep
//! re-interprets the same instruction thousands of times.
//!
//! The key observation is that *data validity is value-independent*: every
//! switch source carries `Some` on a contiguous cycle window determined
//! entirely by instruction structure — DMA counts, shift/delay tap depths,
//! compensation-queue depths and functional-unit pipeline latencies.
//! [`CompiledKernel::compile`] therefore performs the whole cycle-level
//! analysis once per instruction: it computes each source's validity
//! window, the completion-interrupt cycle, and every counter except the
//! exception count analytically, then lowers the datapath to a plan of
//! flat element loops (strided bulk reads, one vectorizable loop per
//! functional unit, strided bulk writes). Executing the plan produces
//! **bit-identical** memory effects, counters and source traces to the
//! interpreter — including the simulated clock-cycle charge — at a small
//! fraction of the host cost.
//!
//! Instructions whose behaviour cannot be proven equivalent statically
//! (wire cycles, DMA ranges that overlap within the instruction,
//! under-supplied stream writes that would hang, malformed programs) are
//! simply not specialized; [`crate::NodeSim::run_program_with_kernel`]
//! falls back to the interpreter for those, so the fast path is always
//! safe to enable.

use crate::counters::PerfCounters;
use crate::exec::{SourceTrace, SETUP_CYCLES};
use crate::memory::NodeMemory;
use nsc_arch::{FuOp, KnowledgeBase, SinkRef, SourceRef};
use nsc_microcode::{FuInputSel, MicroInstruction, MicroProgram, WriteMode};
use std::collections::HashMap;

// ---------------------------------------------------------------------
// plan data model
// ---------------------------------------------------------------------

/// A half-open validity window in instruction-local cycles; `end == None`
/// means valid forever (constant- or feedback-fed sources).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Win {
    start: u64,
    end: Option<u64>,
}

impl Win {
    fn shifted(self, by: u64) -> Win {
        Win { start: self.start + by, end: self.end.map(|e| e + by) }
    }

    /// Number of valid cycles once execution stops after `executed` cycles.
    fn clipped_len(self, executed: u64) -> u64 {
        let end = self.end.map_or(executed, |e| e.min(executed));
        end.saturating_sub(self.start)
    }
}

/// Intersection of two windows (empty becomes `None`).
fn intersect(a: Win, b: Win) -> Option<Win> {
    let start = a.start.max(b.start);
    let end = match (a.end, b.end) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (Some(x), None) | (None, Some(x)) => Some(x),
        (None, None) => None,
    };
    match end {
        Some(e) if e <= start => None,
        _ => Some(Win { start, end }),
    }
}

/// Storage target of a DMA transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Store {
    Plane(usize),
    Cache(usize, u8),
}

#[derive(Debug, Clone)]
struct ReadPlan {
    slot: usize,
    store: Store,
    base: i64,
    stride: i64,
    count: usize,
}

/// Where a functional-unit operand's element `k` comes from.
#[derive(Debug, Clone)]
enum Arg {
    /// `streams[slot][k + offset]`.
    Stream { slot: usize, offset: usize },
    /// A register-file constant.
    Lit(f64),
    /// The feedback accumulator (previous result).
    Acc,
}

#[derive(Debug, Clone)]
struct StagePlan {
    out_slot: usize,
    op: FuOp,
    const_val: f64,
    preload: f64,
    n: usize,
    a: Arg,
    b: Arg,
    uses_acc: bool,
}

#[derive(Debug, Clone)]
enum WritePlan {
    /// A stream-mode DMA: store `streams[slot][skip .. skip + count]`.
    Stream { store: Store, base: i64, stride: i64, slot: usize, skip: usize, count: usize },
    /// A `LastOnly` scalar capture: store `streams[slot][idx]` at `base`.
    Last { store: Store, base: i64, slot: usize, idx: usize },
}

#[derive(Debug, Clone)]
struct TracePlan {
    code: u16,
    slot: usize,
    idx: usize,
}

#[derive(Debug, Clone)]
struct PipelinePlan {
    slots: usize,
    reads: Vec<ReadPlan>,
    stages: Vec<StagePlan>,
    writes: Vec<WritePlan>,
    trace: Vec<TracePlan>,
    /// Cycles the lockstep loop would execute (completion cycle + 1).
    executed_cycles: u64,
    flops: u64,
    elements_streamed: u64,
    elements_stored: u64,
}

#[derive(Debug, Clone)]
enum PlanBody {
    /// No reads, writes or functional units: costs setup only.
    Idle,
    Pipeline(Box<PipelinePlan>),
}

/// One specialized instruction.
#[derive(Debug, Clone)]
pub(crate) struct InstrPlan {
    n_sources: usize,
    body: PlanBody,
}

// ---------------------------------------------------------------------
// the compiled kernel
// ---------------------------------------------------------------------

/// A program specialized for host-speed execution.
///
/// Built once per [`MicroProgram`] (typically at `Session::compile` time
/// and cached by document digest); safe to share across threads — one
/// kernel can drive every node of a pool concurrently. Instructions the
/// analysis cannot specialize keep `None` plans and execute through the
/// interpreter, with identical results either way.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    plans: Vec<Option<InstrPlan>>,
}

impl CompiledKernel {
    /// Analyze every instruction of `prog` against machine `kb`.
    ///
    /// The kernel is only meaningful for the knowledge base it was
    /// compiled against (source codes and latencies are baked in), which
    /// must also be the executing node's machine — the same contract the
    /// generated program itself already carries.
    pub fn compile(kb: &KnowledgeBase, prog: &MicroProgram) -> CompiledKernel {
        CompiledKernel { plans: prog.instrs.iter().map(|ins| plan_instruction(kb, ins)).collect() }
    }

    /// Number of instructions the kernel covers.
    pub fn instructions(&self) -> usize {
        self.plans.len()
    }

    /// How many instructions were specialized (the rest fall back to the
    /// interpreter).
    pub fn specialized(&self) -> usize {
        self.plans.iter().filter(|p| p.is_some()).count()
    }

    pub(crate) fn plan(&self, pc: usize) -> Option<&InstrPlan> {
        self.plans.get(pc).and_then(|p| p.as_ref())
    }

    /// The kernel calculus's per-instruction claim, for certificate
    /// emission: the validity window in cycles and the work budget
    /// inside it. `None` for instructions the analysis could not
    /// specialize (they execute through the interpreter) and for idle
    /// instructions, which stream nothing.
    pub fn plan_summary(&self, pc: usize) -> Option<KernelPlanSummary> {
        match &self.plan(pc)?.body {
            PlanBody::Idle => None,
            PlanBody::Pipeline(p) => Some(KernelPlanSummary {
                executed_cycles: p.executed_cycles,
                flops: p.flops,
                elements_streamed: p.elements_streamed,
                elements_stored: p.elements_stored,
            }),
        }
    }
}

/// The public face of one specialized instruction's plan — what the
/// compile pipeline copies into a run certificate so an independent
/// verifier can bound the claimed work (see `nsc-cert`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelPlanSummary {
    /// Cycles the lockstep loop executes (completion cycle + 1).
    pub executed_cycles: u64,
    /// Floating-point operations performed inside the window.
    pub flops: u64,
    /// Elements streamed in from planes and caches.
    pub elements_streamed: u64,
    /// Elements stored back to planes and caches.
    pub elements_stored: u64,
}

// ---------------------------------------------------------------------
// planning
// ---------------------------------------------------------------------

/// What an enabled switch source is, for window resolution.
#[derive(Debug, Clone, Copy)]
enum Kind {
    Read(usize),
    Tap { sdu: usize, eff: u64 },
    Fu(usize),
}

struct FuSpec {
    src_code: u16,
    op: FuOp,
    lat: u64,
    in_a: FuInputSel,
    in_b: FuInputSel,
    a_driver: Option<u16>,
    b_driver: Option<u16>,
    const_val: f64,
}

struct WriteSpec {
    driver: Option<u16>,
    store: Store,
    base: i64,
    stride: i64,
    count: u64,
    skip: u64,
    mode: WriteMode,
}

/// A source's resolved validity window and backing value stream.
type Resolved = Option<(Win, usize)>;

struct Planner<'a> {
    kinds: HashMap<u16, Kind>,
    read_counts: Vec<u64>,
    sdu_drivers: Vec<Option<u16>>,
    fus: &'a [FuSpec],
    /// Lazily planned per-FU result window (pre-latency) and arg metadata.
    fu_result: Vec<Option<(Option<Win>, ArgMeta, ArgMeta)>>,
    /// FU indices in dependency (post-) order.
    stage_order: Vec<usize>,
    memo: HashMap<u16, Resolved>,
    resolving: Vec<u16>,
    n_reads: usize,
}

#[derive(Debug, Clone)]
enum ArgMeta {
    Stream { slot: usize, win_start: u64 },
    Lit(f64),
    Acc,
    Dead,
}

/// Structurally unsupported: fall back to the interpreter.
struct Unsupported;

impl Planner<'_> {
    fn resolve(&mut self, code: u16) -> Result<Resolved, Unsupported> {
        if let Some(r) = self.memo.get(&code) {
            return Ok(*r);
        }
        let r = match self.kinds.get(&code).copied() {
            None => None,
            Some(Kind::Read(i)) => {
                let count = self.read_counts[i];
                (count > 0).then_some((Win { start: 0, end: Some(count) }, i))
            }
            Some(Kind::Tap { sdu, eff }) => {
                if self.resolving.contains(&code) {
                    return Err(Unsupported); // wire cycle through an SDU
                }
                self.resolving.push(code);
                let r = match self.sdu_drivers[sdu] {
                    None => None,
                    Some(d) => self.resolve(d)?.map(|(w, slot)| (w.shifted(eff), slot)),
                };
                self.resolving.pop();
                r
            }
            Some(Kind::Fu(j)) => {
                // Cycle detection for FUs lives inside `ensure_fu`, which
                // is also entered directly by the planning loop.
                self.ensure_fu(j)?;
                let (rw, _, _) = self.fu_result[j].as_ref().expect("planned");
                rw.map(|w| (w.shifted(self.fus[j].lat), self.n_reads + j))
            }
        };
        self.memo.insert(code, r);
        Ok(r)
    }

    fn operand(
        &mut self,
        sel: FuInputSel,
        driver: Option<u16>,
        cv: f64,
    ) -> Result<(Option<Win>, ArgMeta), Unsupported> {
        Ok(match sel {
            FuInputSel::Switch | FuInputSel::Queue(_) => {
                let shift = match sel {
                    FuInputSel::Queue(d) => d as u64,
                    _ => 0,
                };
                match driver.map(|d| self.resolve(d)).transpose()?.flatten() {
                    None => (None, ArgMeta::Dead),
                    Some((w, slot)) => {
                        let w = w.shifted(shift);
                        (Some(w), ArgMeta::Stream { slot, win_start: w.start })
                    }
                }
            }
            FuInputSel::Constant(_) => (Some(Win { start: 0, end: None }), ArgMeta::Lit(cv)),
            FuInputSel::Feedback(_) => (Some(Win { start: 0, end: None }), ArgMeta::Acc),
        })
    }

    fn ensure_fu(&mut self, j: usize) -> Result<(), Unsupported> {
        if self.fu_result[j].is_some() {
            return Ok(());
        }
        let code = self.fus[j].src_code;
        if self.resolving.contains(&code) {
            return Err(Unsupported);
        }
        self.resolving.push(code);
        let spec = &self.fus[j];
        let (op, cv, in_a, in_b, ad, bd) =
            (spec.op, spec.const_val, spec.in_a, spec.in_b, spec.a_driver, spec.b_driver);
        let (wa, ma) = self.operand(in_a, ad, cv)?;
        let (wb, mb) = self.operand(in_b, bd, cv)?;
        let rw = if op.arity() == 2 {
            match (wa, wb) {
                (Some(a), Some(b)) => intersect(a, b),
                _ => None,
            }
        } else {
            wa
        };
        self.resolving.pop();
        self.fu_result[j] = Some((rw, ma, mb));
        self.stage_order.push(j);
        Ok(())
    }
}

/// Analyze one instruction; `None` means "leave it to the interpreter".
fn plan_instruction(kb: &KnowledgeBase, ins: &MicroInstruction) -> Option<InstrPlan> {
    let n_sources = kb.sources().len();
    let latency = kb.config().latency;
    let transit = latency.sdu_transit as u64;
    let driver_code = |sink: SinkRef| -> Option<u16> {
        ins.switch.driver(kb, sink).and_then(|s| kb.source_code(s))
    };

    // --- enabled components, mirroring the interpreter's construction ---
    let mut fus: Vec<FuSpec> = Vec::new();
    for (i, f) in ins.fus.iter().enumerate() {
        if !f.enabled {
            continue;
        }
        let fu = nsc_arch::FuId(i as u8);
        // A missing source code is a BadProgram in the interpreter: fall
        // back so the error surfaces identically.
        let src_code = kb.source_code(SourceRef::Fu(fu))?;
        fus.push(FuSpec {
            src_code,
            op: f.op,
            lat: (latency.latency(f.op) as u64).max(1),
            in_a: f.in_a,
            in_b: f.in_b,
            a_driver: driver_code(SinkRef::FuIn(fu, nsc_arch::InPort::A)),
            b_driver: driver_code(SinkRef::FuIn(fu, nsc_arch::InPort::B)),
            const_val: f.preload.unwrap_or(0.0),
        });
    }

    // (driver, ring_len, taps as (code, eff))
    let mut sdu_drivers: Vec<Option<u16>> = Vec::new();
    let mut sdu_rings: Vec<u64> = Vec::new();
    let mut taps: Vec<(u16, usize, u64)> = Vec::new(); // (code, sdu index, eff)
    for (i, s) in ins.sdus.iter().enumerate() {
        if !s.enabled {
            continue;
        }
        let sid = nsc_arch::SduId(i as u8);
        let idx = sdu_drivers.len();
        let mut max_eff = transit;
        for (t, tap) in s.taps.iter().enumerate() {
            if !tap.enabled {
                continue;
            }
            if let Some(code) = kb.source_code(SourceRef::SduTap(sid, t as u8)) {
                let eff = tap.delay as u64 + transit;
                max_eff = max_eff.max(eff);
                taps.push((code, idx, eff));
            }
        }
        sdu_drivers.push(driver_code(SinkRef::SduIn(sid)));
        sdu_rings.push(max_eff + 1);
    }

    let mut reads: Vec<(u16, Store, i64, i64, u64)> = Vec::new();
    for (i, d) in ins.plane_rd.iter().enumerate() {
        if d.enabled {
            let code = kb.source_code(SourceRef::PlaneRead(nsc_arch::PlaneId(i as u8)))?;
            reads.push((code, Store::Plane(i), d.base as i64, d.stride as i64, d.count as u64));
        }
    }
    for (i, d) in ins.cache_rd.iter().enumerate() {
        if d.enabled {
            let code = kb.source_code(SourceRef::CacheRead(nsc_arch::CacheId(i as u8)))?;
            reads.push((
                code,
                Store::Cache(i, d.buffer),
                d.offset as i64,
                d.stride as i64,
                d.count as u64,
            ));
        }
    }

    let mut writes: Vec<WriteSpec> = Vec::new();
    for (i, d) in ins.plane_wr.iter().enumerate() {
        if d.enabled {
            writes.push(WriteSpec {
                driver: driver_code(SinkRef::PlaneWrite(nsc_arch::PlaneId(i as u8))),
                store: Store::Plane(i),
                base: d.base as i64,
                stride: d.stride as i64,
                count: d.count as u64,
                skip: d.skip as u64,
                mode: d.mode,
            });
        }
    }
    for (i, d) in ins.cache_wr.iter().enumerate() {
        if d.enabled {
            writes.push(WriteSpec {
                driver: driver_code(SinkRef::CacheWrite(nsc_arch::CacheId(i as u8))),
                store: Store::Cache(i, d.buffer),
                base: d.offset as i64,
                stride: d.stride as i64,
                count: d.count as u64,
                skip: d.skip as u64,
                mode: d.mode,
            });
        }
    }

    if writes.is_empty() && reads.is_empty() && fus.is_empty() {
        return Some(InstrPlan { n_sources, body: PlanBody::Idle });
    }

    // --- memory hazards the flat plan cannot reproduce ---
    // The interpreter interleaves reads and stream writes cycle by cycle;
    // the plan reads everything first and writes afterwards. That is only
    // equivalent when the address ranges are disjoint. (`LastOnly`
    // captures finalize after the loop in both models, so they need no
    // check against reads or stream writes.)
    let range = |base: i64, stride: i64, count: u64| -> (i64, i64) {
        let last = base + (count as i64 - 1) * stride;
        (base.min(last), base.max(last))
    };
    let stream_writes: Vec<(Store, i64, i64)> = writes
        .iter()
        .filter(|w| w.mode == WriteMode::Stream && w.count > 0)
        .map(|w| {
            let (lo, hi) = range(w.base, w.stride, w.count);
            (w.store, lo, hi)
        })
        .collect();
    for (wi, &(ws, wlo, whi)) in stream_writes.iter().enumerate() {
        for &(rs, rbase, rstride, rcount) in
            reads.iter().map(|r| (r.1, r.2, r.3, r.4)).collect::<Vec<_>>().iter()
        {
            if rcount == 0 || rs != ws {
                continue;
            }
            let (rlo, rhi) = range(rbase, rstride, rcount);
            if rlo <= whi && wlo <= rhi {
                return None;
            }
        }
        for &(os, olo, ohi) in stream_writes.iter().skip(wi + 1) {
            if os == ws && olo <= whi && wlo <= ohi {
                return None;
            }
        }
    }

    // --- resolve every source window ---
    let mut kinds: HashMap<u16, Kind> = HashMap::new();
    for (i, r) in reads.iter().enumerate() {
        kinds.insert(r.0, Kind::Read(i));
    }
    for &(code, sdu, eff) in &taps {
        kinds.insert(code, Kind::Tap { sdu, eff });
    }
    for (j, f) in fus.iter().enumerate() {
        kinds.insert(f.src_code, Kind::Fu(j));
    }

    let n_reads = reads.len();
    let mut planner = Planner {
        kinds,
        read_counts: reads.iter().map(|r| r.4).collect(),
        sdu_drivers,
        fus: &fus,
        fu_result: vec![None; fus.len()],
        stage_order: Vec::new(),
        memo: HashMap::new(),
        resolving: Vec::new(),
        n_reads,
    };
    for j in 0..fus.len() {
        planner.ensure_fu(j).ok()?;
    }

    // --- the completion cycle ---
    let max_count = reads.iter().map(|r| r.4).max().unwrap_or(0);
    let drain_bound: u64 =
        sdu_rings.iter().sum::<u64>() + fus.iter().map(|f| f.lat + 70).sum::<u64>() + 16;
    let hard_cap = max_count + drain_bound + 1024;

    let mut term = max_count.saturating_sub(1);
    let mut lastonly_present = false;
    let mut lastonly_drain: u64 = 0; // cycle all captures have drained (MAX = never)
    let mut write_windows: Vec<Resolved> = Vec::with_capacity(writes.len());
    for w in &writes {
        let dw = match w.driver {
            Some(d) => planner.resolve(d).ok()?,
            None => None,
        };
        write_windows.push(dw);
        match w.mode {
            WriteMode::Stream => {
                if w.count == 0 {
                    continue;
                }
                let win = dw.map(|(win, _)| win)?; // no driver data: would hang
                if let Some(end) = win.end {
                    if end - win.start < w.skip + w.count {
                        return None; // under-supplied: would hang
                    }
                }
                term = term.max(win.start + w.skip + w.count - 1);
            }
            WriteMode::LastOnly => {
                lastonly_present = true;
                let drain = match dw {
                    Some((Win { end: Some(e), .. }, _)) => e,
                    _ => u64::MAX, // never-dropping data line: conservative bound
                };
                lastonly_drain = lastonly_drain.max(drain);
            }
        }
    }
    if lastonly_present {
        let t_drain = drain_bound + max_count.saturating_sub(1);
        term = term.max(lastonly_drain.min(t_drain));
    }
    if term >= hard_cap {
        return None; // the interpreter would hang at its hard cap
    }
    let executed = term + 1;

    // --- lower to the flat plan ---
    let read_plans: Vec<ReadPlan> = reads
        .iter()
        .enumerate()
        .map(|(i, r)| ReadPlan { slot: i, store: r.1, base: r.2, stride: r.3, count: r.4 as usize })
        .collect();

    let mut stages: Vec<StagePlan> = Vec::new();
    let mut flops: u64 = 0;
    for &j in &planner.stage_order {
        let (rw, ma, mb) = planner.fu_result[j].clone().expect("planned");
        let Some(rw) = rw else { continue };
        let n = rw.clipped_len(executed);
        if n == 0 {
            continue;
        }
        let spec = &fus[j];
        if spec.op.is_flop() {
            flops += n;
        }
        let lower = |m: &ArgMeta| -> Arg {
            match m {
                ArgMeta::Stream { slot, win_start } => {
                    Arg::Stream { slot: *slot, offset: (rw.start - win_start) as usize }
                }
                ArgMeta::Lit(v) => Arg::Lit(*v),
                ArgMeta::Acc => Arg::Acc,
                ArgMeta::Dead => Arg::Lit(0.0), // only reachable for unary ops
            }
        };
        let a = lower(&ma);
        let b = if spec.op.arity() == 2 { lower(&mb) } else { Arg::Lit(0.0) };
        let uses_acc = matches!(a, Arg::Acc) || (spec.op.arity() == 2 && matches!(b, Arg::Acc));
        stages.push(StagePlan {
            out_slot: n_reads + j,
            op: spec.op,
            const_val: spec.const_val,
            preload: spec.const_val,
            n: n as usize,
            a,
            b,
            uses_acc,
        });
    }

    let mut write_plans: Vec<WritePlan> = Vec::new();
    let mut elements_stored: u64 = 0;
    for (w, dw) in writes.iter().zip(&write_windows) {
        match w.mode {
            WriteMode::Stream => {
                if w.count == 0 {
                    continue;
                }
                let (_, slot) = dw.expect("checked above");
                write_plans.push(WritePlan::Stream {
                    store: w.store,
                    base: w.base,
                    stride: w.stride,
                    slot,
                    skip: w.skip as usize,
                    count: w.count as usize,
                });
                elements_stored += w.count;
            }
            WriteMode::LastOnly => {
                let Some((win, slot)) = *dw else { continue };
                let n = win.clipped_len(executed);
                if n == 0 {
                    continue;
                }
                write_plans.push(WritePlan::Last {
                    store: w.store,
                    base: w.base,
                    slot,
                    idx: n as usize - 1,
                });
                elements_stored += 1;
            }
        }
    }

    // --- the debugger trace: last valid value per source ---
    let mut trace: Vec<TracePlan> = Vec::new();
    {
        let codes: Vec<u16> = reads
            .iter()
            .map(|r| r.0)
            .chain(taps.iter().map(|t| t.0))
            .chain(fus.iter().map(|f| f.src_code))
            .collect();
        for code in codes {
            if let Some((win, slot)) = planner.resolve(code).ok()? {
                let n = win.clipped_len(executed);
                if n > 0 {
                    trace.push(TracePlan { code, slot, idx: n as usize - 1 });
                }
            }
        }
    }

    Some(InstrPlan {
        n_sources,
        body: PlanBody::Pipeline(Box::new(PipelinePlan {
            slots: n_reads + fus.len(),
            reads: read_plans,
            stages,
            writes: write_plans,
            trace,
            executed_cycles: executed,
            flops,
            elements_streamed: reads.iter().map(|r| r.4).sum(),
            elements_stored,
        })),
    })
}

// ---------------------------------------------------------------------
// execution
// ---------------------------------------------------------------------

impl Store {
    fn read_into(self, mem: &NodeMemory, base: i64, stride: i64, count: usize, out: &mut Vec<f64>) {
        match self {
            Store::Plane(p) => mem.planes[p].read_strided_into(base, stride, count, out),
            Store::Cache(c, buf) => {
                let cache = &mem.caches[c];
                out.reserve(count);
                for k in 0..count {
                    out.push(cache.read(buf, (base + k as i64 * stride) as u64));
                }
            }
        }
    }

    fn write_from(self, mem: &mut NodeMemory, base: i64, stride: i64, vals: &[f64]) {
        match self {
            Store::Plane(p) => mem.planes[p].write_strided(base, stride, vals),
            Store::Cache(c, buf) => {
                let cache = &mut mem.caches[c];
                for (k, &v) in vals.iter().enumerate() {
                    cache.write(buf, (base + k as i64 * stride) as u64, v);
                }
            }
        }
    }

    fn write_one(self, mem: &mut NodeMemory, addr: i64, v: f64) {
        match self {
            Store::Plane(p) => mem.planes[p].write(addr as u64, v),
            Store::Cache(c, buf) => mem.caches[c].write(buf, addr as u64, v),
        }
    }
}

/// One vectorizable element loop: the operation dispatch is hoisted out of
/// the loop, and the hot arithmetic is expressed exactly as
/// [`FuOp::apply`] does it so results stay bit-identical.
#[inline]
fn run_loop(
    op: FuOp,
    cv: f64,
    n: usize,
    a: impl Fn(usize) -> f64,
    b: impl Fn(usize) -> f64,
    out: &mut Vec<f64>,
    exc: &mut u64,
) {
    macro_rules! go {
        ($f:expr) => {{
            let f = $f;
            for k in 0..n {
                let r: f64 = f(a(k), b(k));
                if !r.is_finite() {
                    *exc += 1;
                }
                out.push(r);
            }
        }};
    }
    match op {
        FuOp::Add => go!(|x: f64, y: f64| x + y),
        FuOp::Sub => go!(|x: f64, y: f64| x - y),
        FuOp::Mul => go!(|x: f64, y: f64| x * y),
        FuOp::Div => go!(|x: f64, y: f64| x / y),
        FuOp::Neg => go!(|x: f64, _y: f64| -x),
        FuOp::Abs => go!(|x: f64, _y: f64| x.abs()),
        FuOp::Sqrt => go!(|x: f64, _y: f64| x.sqrt()),
        FuOp::Recip => go!(|x: f64, _y: f64| 1.0 / x),
        FuOp::Copy => go!(|x: f64, _y: f64| x),
        FuOp::MulAddConst => go!(|x: f64, y: f64| x * y + cv),
        FuOp::Max => go!(|x: f64, y: f64| x.max(y)),
        FuOp::Min => go!(|x: f64, y: f64| x.min(y)),
        FuOp::MaxAbs => go!(|x: f64, y: f64| x.abs().max(y)),
        other => go!(|x: f64, y: f64| other.apply(x, y, cv)),
    }
}

fn eval_stage(stage: &StagePlan, streams: &mut [Vec<f64>], exceptions: &mut u64) {
    let mut out = std::mem::take(&mut streams[stage.out_slot]);
    out.clear();
    out.reserve(stage.n);
    if stage.uses_acc {
        // Feedback reductions are inherently sequential: fold with the
        // accumulator, updating it on every result like the interpreter.
        let fetch = |arg: &Arg, k: usize, acc: f64, streams: &[Vec<f64>]| -> f64 {
            match arg {
                Arg::Stream { slot, offset } => streams[*slot][k + offset],
                Arg::Lit(v) => *v,
                Arg::Acc => acc,
            }
        };
        let mut acc = stage.preload;
        for k in 0..stage.n {
            let x = fetch(&stage.a, k, acc, streams);
            let y = fetch(&stage.b, k, acc, streams);
            let r = stage.op.apply(x, y, stage.const_val);
            if !r.is_finite() {
                *exceptions += 1;
            }
            acc = r;
            out.push(r);
        }
    } else {
        enum Side<'s> {
            S(&'s [f64]),
            C(f64),
        }
        let side = |arg: &Arg| -> Side<'_> {
            match arg {
                Arg::Stream { slot, offset } => {
                    Side::S(&streams[*slot][*offset..*offset + stage.n])
                }
                Arg::Lit(v) => Side::C(*v),
                Arg::Acc => unreachable!("acc handled above"),
            }
        };
        match (side(&stage.a), side(&stage.b)) {
            (Side::S(a), Side::S(b)) => run_loop(
                stage.op,
                stage.const_val,
                stage.n,
                |k| a[k],
                |k| b[k],
                &mut out,
                exceptions,
            ),
            (Side::S(a), Side::C(b)) => {
                run_loop(stage.op, stage.const_val, stage.n, |k| a[k], |_| b, &mut out, exceptions)
            }
            (Side::C(a), Side::S(b)) => {
                run_loop(stage.op, stage.const_val, stage.n, |_| a, |k| b[k], &mut out, exceptions)
            }
            (Side::C(a), Side::C(b)) => {
                run_loop(stage.op, stage.const_val, stage.n, |_| a, |_| b, &mut out, exceptions)
            }
        }
    }
    streams[stage.out_slot] = out;
}

/// Execute a specialized instruction: bit-identical memory effects,
/// counters and (when requested) trace to `execute_instruction`.
pub(crate) fn run_plan(
    plan: &InstrPlan,
    mem: &mut NodeMemory,
    counters: &mut PerfCounters,
    want_trace: bool,
) -> SourceTrace {
    counters.cycles += SETUP_CYCLES;
    counters.instructions += 1;
    counters.completion_interrupts += 1;
    let p = match &plan.body {
        PlanBody::Idle => {
            return SourceTrace {
                last: if want_trace { vec![None; plan.n_sources] } else { Vec::new() },
            }
        }
        PlanBody::Pipeline(p) => p,
    };

    let mut streams: Vec<Vec<f64>> = vec![Vec::new(); p.slots];
    for r in &p.reads {
        let mut buf = std::mem::take(&mut streams[r.slot]);
        r.store.read_into(mem, r.base, r.stride, r.count, &mut buf);
        streams[r.slot] = buf;
    }

    let mut exceptions: u64 = 0;
    for stage in &p.stages {
        eval_stage(stage, &mut streams, &mut exceptions);
    }

    for w in &p.writes {
        if let WritePlan::Stream { store, base, stride, slot, skip, count } = *w {
            store.write_from(mem, base, stride, &streams[slot][skip..skip + count]);
        }
    }
    for w in &p.writes {
        if let WritePlan::Last { store, base, slot, idx } = *w {
            store.write_one(mem, base, streams[slot][idx]);
        }
    }

    counters.cycles += p.executed_cycles;
    counters.flops += p.flops;
    counters.elements_streamed += p.elements_streamed;
    counters.elements_stored += p.elements_stored;
    counters.exceptions += exceptions;

    let last = if want_trace {
        let mut last = vec![None; plan.n_sources];
        for t in &p.trace {
            last[t.code as usize] = Some(streams[t.slot][t.idx]);
        }
        last
    } else {
        Vec::new()
    };
    SourceTrace { last }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_instruction;
    use nsc_arch::{CacheId, FuId, InPort, MachineConfig, PlaneId, SduId};
    use nsc_microcode::{CacheDmaField, FuField, PlaneDmaField, SduField};

    fn kb() -> KnowledgeBase {
        KnowledgeBase::nsc_1988()
    }

    /// Run `ins` through both paths on identical memory; assert the plan
    /// exists and that counters, traces and the probed ranges agree to the
    /// bit.
    fn assert_identical(
        kb: &KnowledgeBase,
        ins: &MicroInstruction,
        init: impl Fn(&mut NodeMemory),
        probes: &[(Store, i64, usize)],
    ) {
        let mut mem_i = NodeMemory::new(kb.config());
        let mut mem_k = NodeMemory::new(kb.config());
        init(&mut mem_i);
        init(&mut mem_k);
        let mut c_i = PerfCounters::default();
        let mut c_k = PerfCounters::default();

        let trace_i = execute_instruction(kb, ins, &mut mem_i, &mut c_i).expect("interpreter runs");
        let plan = plan_instruction(kb, ins).expect("instruction specializes");
        let trace_k = run_plan(&plan, &mut mem_k, &mut c_k, true);

        assert_eq!(c_i, c_k, "counters must match exactly");
        let bits = |t: &SourceTrace| -> Vec<Option<u64>> {
            t.last.iter().map(|v| v.map(f64::to_bits)).collect()
        };
        assert_eq!(bits(&trace_i), bits(&trace_k), "traces must match");
        for &(store, base, len) in probes {
            for k in 0..len {
                let addr = base + k as i64;
                let (vi, vk) = match store {
                    Store::Plane(p) => {
                        (mem_i.planes[p].read(addr as u64), mem_k.planes[p].read(addr as u64))
                    }
                    Store::Cache(c, b) => {
                        (mem_i.caches[c].read(b, addr as u64), mem_k.caches[c].read(b, addr as u64))
                    }
                };
                assert_eq!(vi.to_bits(), vk.to_bits(), "{store:?} @ {addr}");
            }
        }
    }

    fn copy_instr(kb: &KnowledgeBase, count: u32) -> MicroInstruction {
        let mut ins = MicroInstruction::empty(kb);
        *ins.fu_mut(FuId(0)) = FuField::active(FuOp::Copy);
        *ins.plane_rd_mut(PlaneId(0)) = PlaneDmaField::contiguous(0, count);
        *ins.plane_wr_mut(PlaneId(1)) = PlaneDmaField::contiguous(500, count);
        ins.switch.route(kb, SourceRef::PlaneRead(PlaneId(0)), SinkRef::FuIn(FuId(0), InPort::A));
        ins.switch.route(kb, SourceRef::Fu(FuId(0)), SinkRef::PlaneWrite(PlaneId(1)));
        ins
    }

    #[test]
    fn copy_pipeline_is_identical() {
        let kb = kb();
        let ins = copy_instr(&kb, 100);
        assert_identical(
            &kb,
            &ins,
            |m| m.planes[0].write_slice(0, &(0..100).map(|i| i as f64).collect::<Vec<_>>()),
            &[(Store::Plane(1), 500, 100)],
        );
    }

    #[test]
    fn two_stream_add_is_identical() {
        let kb = kb();
        let mut ins = MicroInstruction::empty(&kb);
        *ins.fu_mut(FuId(0)) = FuField::active(FuOp::Add);
        *ins.plane_rd_mut(PlaneId(0)) = PlaneDmaField::contiguous(0, 50);
        *ins.cache_rd_mut(CacheId(0)) = CacheDmaField {
            enabled: true,
            offset: 0,
            stride: 1,
            count: 50,
            skip: 0,
            buffer: 0,
            mode: WriteMode::Stream,
        };
        *ins.plane_wr_mut(PlaneId(1)) = PlaneDmaField::contiguous(0, 50);
        ins.switch.route(&kb, SourceRef::PlaneRead(PlaneId(0)), SinkRef::FuIn(FuId(0), InPort::A));
        ins.switch.route(&kb, SourceRef::CacheRead(CacheId(0)), SinkRef::FuIn(FuId(0), InPort::B));
        ins.switch.route(&kb, SourceRef::Fu(FuId(0)), SinkRef::PlaneWrite(PlaneId(1)));
        assert_identical(
            &kb,
            &ins,
            |m| {
                m.planes[0].write_slice(0, &(0..50).map(|i| i as f64).collect::<Vec<_>>());
                for i in 0..50 {
                    m.caches[0].write(0, i, 2.0 * i as f64);
                }
            },
            &[(Store::Plane(1), 0, 50)],
        );
    }

    #[test]
    fn feedback_reduction_and_scalar_capture_are_identical() {
        let kb = kb();
        let mut ins = MicroInstruction::empty(&kb);
        *ins.fu_mut(FuId(2)) = FuField {
            enabled: true,
            op: FuOp::MaxAbs,
            in_a: FuInputSel::Switch,
            in_b: FuInputSel::Feedback(0),
            const_slot: 0,
            preload: Some(0.0),
        };
        *ins.plane_rd_mut(PlaneId(0)) = PlaneDmaField::contiguous(0, 128);
        *ins.cache_wr_mut(CacheId(0)) = CacheDmaField::scalar_capture(7);
        ins.switch.route(&kb, SourceRef::PlaneRead(PlaneId(0)), SinkRef::FuIn(FuId(2), InPort::A));
        ins.switch.route(&kb, SourceRef::Fu(FuId(2)), SinkRef::CacheWrite(CacheId(0)));
        assert_identical(
            &kb,
            &ins,
            |m| {
                m.planes[0].write_slice(0, &(0..128).map(|i| (i as f64) - 64.0).collect::<Vec<_>>())
            },
            &[(Store::Cache(0, 0), 7, 1)],
        );
    }

    #[test]
    fn sdu_taps_and_write_skip_are_identical() {
        let kb = kb();
        let mut ins = MicroInstruction::empty(&kb);
        *ins.fu_mut(FuId(0)) = FuField::active(FuOp::Sub);
        *ins.plane_rd_mut(PlaneId(0)) = PlaneDmaField::contiguous(0, 10);
        *ins.sdu_mut(SduId(0)) = SduField::with_delays(&[0, 3]);
        *ins.plane_wr_mut(PlaneId(1)) = PlaneDmaField::contiguous(0, 7);
        ins.switch.route(&kb, SourceRef::PlaneRead(PlaneId(0)), SinkRef::SduIn(SduId(0)));
        ins.switch.route(&kb, SourceRef::SduTap(SduId(0), 0), SinkRef::FuIn(FuId(0), InPort::A));
        ins.switch.route(&kb, SourceRef::SduTap(SduId(0), 1), SinkRef::FuIn(FuId(0), InPort::B));
        ins.switch.route(&kb, SourceRef::Fu(FuId(0)), SinkRef::PlaneWrite(PlaneId(1)));
        assert_identical(
            &kb,
            &ins,
            |m| m.planes[0].write_slice(0, &(0..10).map(|i| (i * i) as f64).collect::<Vec<_>>()),
            &[(Store::Plane(1), 0, 7)],
        );
    }

    #[test]
    fn fu_chain_with_queue_delay_is_identical() {
        let kb = kb();
        let mut ins = MicroInstruction::empty(&kb);
        *ins.fu_mut(FuId(0)) = FuField::active(FuOp::Abs);
        *ins.fu_mut(FuId(3)) = FuField {
            enabled: true,
            op: FuOp::Add,
            in_a: FuInputSel::Switch,
            in_b: FuInputSel::Queue(3),
            const_slot: 0,
            preload: None,
        };
        *ins.plane_rd_mut(PlaneId(0)) = PlaneDmaField::contiguous(0, 5);
        *ins.plane_wr_mut(PlaneId(1)) = PlaneDmaField::contiguous(0, 5);
        ins.switch.route(&kb, SourceRef::PlaneRead(PlaneId(0)), SinkRef::FuIn(FuId(0), InPort::A));
        ins.switch.route(&kb, SourceRef::Fu(FuId(0)), SinkRef::FuIn(FuId(3), InPort::A));
        ins.switch.route(&kb, SourceRef::PlaneRead(PlaneId(0)), SinkRef::FuIn(FuId(3), InPort::B));
        ins.switch.route(&kb, SourceRef::Fu(FuId(3)), SinkRef::PlaneWrite(PlaneId(1)));
        assert_identical(
            &kb,
            &ins,
            |m| m.planes[0].write_slice(0, &[-1.0, 2.0, -3.0, 4.0, -5.0]),
            &[(Store::Plane(1), 0, 5)],
        );
    }

    #[test]
    fn exceptions_are_identical() {
        let kb = kb();
        let mut ins = MicroInstruction::empty(&kb);
        *ins.fu_mut(FuId(0)) = FuField::active(FuOp::Recip);
        *ins.plane_rd_mut(PlaneId(0)) = PlaneDmaField::contiguous(0, 3);
        *ins.plane_wr_mut(PlaneId(1)) = PlaneDmaField::contiguous(0, 3);
        ins.switch.route(&kb, SourceRef::PlaneRead(PlaneId(0)), SinkRef::FuIn(FuId(0), InPort::A));
        ins.switch.route(&kb, SourceRef::Fu(FuId(0)), SinkRef::PlaneWrite(PlaneId(1)));
        assert_identical(
            &kb,
            &ins,
            |m| m.planes[0].write_slice(0, &[1.0, 0.0, 4.0]),
            &[(Store::Plane(1), 0, 3)],
        );
    }

    #[test]
    fn constant_fed_capture_uses_the_drain_bound_identically() {
        // A LastOnly capture fed by a constant-operand FU never drops its
        // data-valid line; both paths must charge the conservative drain.
        let kb = kb();
        let mut ins = MicroInstruction::empty(&kb);
        *ins.fu_mut(FuId(0)) = FuField {
            enabled: true,
            op: FuOp::Copy,
            in_a: FuInputSel::Constant(0),
            in_b: FuInputSel::Constant(0),
            const_slot: 0,
            preload: Some(42.0),
        };
        *ins.cache_wr_mut(CacheId(0)) = CacheDmaField::scalar_capture(3);
        ins.switch.route(&kb, SourceRef::Fu(FuId(0)), SinkRef::CacheWrite(CacheId(0)));
        assert_identical(&kb, &ins, |_| {}, &[(Store::Cache(0, 0), 3, 1)]);
    }

    #[test]
    fn backwards_and_strided_streams_are_identical() {
        let kb = kb();
        let mut ins = MicroInstruction::empty(&kb);
        *ins.fu_mut(FuId(0)) = FuField {
            enabled: true,
            op: FuOp::Mul,
            in_a: FuInputSel::Switch,
            in_b: FuInputSel::Constant(0),
            const_slot: 0,
            preload: Some(3.0),
        };
        // Read every second word from 20 downward; write with stride 2.
        *ins.plane_rd_mut(PlaneId(0)) = PlaneDmaField {
            enabled: true,
            base: 20,
            stride: -2,
            count: 8,
            skip: 0,
            mode: WriteMode::Stream,
        };
        *ins.plane_wr_mut(PlaneId(1)) = PlaneDmaField {
            enabled: true,
            base: 100,
            stride: 2,
            count: 8,
            skip: 0,
            mode: WriteMode::Stream,
        };
        ins.switch.route(&kb, SourceRef::PlaneRead(PlaneId(0)), SinkRef::FuIn(FuId(0), InPort::A));
        ins.switch.route(&kb, SourceRef::Fu(FuId(0)), SinkRef::PlaneWrite(PlaneId(1)));
        assert_identical(
            &kb,
            &ins,
            |m| m.planes[0].write_slice(0, &(0..32).map(|i| i as f64 + 0.5).collect::<Vec<_>>()),
            &[(Store::Plane(1), 100, 16)],
        );
    }

    #[test]
    fn idle_instruction_is_identical() {
        let kb = kb();
        let ins = MicroInstruction::empty(&kb);
        assert_identical(&kb, &ins, |_| {}, &[]);
    }

    #[test]
    fn small_machine_configs_also_specialize() {
        let kb = KnowledgeBase::new(MachineConfig::test_small());
        let mut ins = MicroInstruction::empty(&kb);
        *ins.fu_mut(FuId(0)) = FuField::active(FuOp::Neg);
        *ins.plane_rd_mut(PlaneId(0)) = PlaneDmaField::contiguous(0, 8);
        *ins.plane_wr_mut(PlaneId(1)) = PlaneDmaField::contiguous(0, 8);
        ins.switch.route(&kb, SourceRef::PlaneRead(PlaneId(0)), SinkRef::FuIn(FuId(0), InPort::A));
        ins.switch.route(&kb, SourceRef::Fu(FuId(0)), SinkRef::PlaneWrite(PlaneId(1)));
        assert_identical(
            &kb,
            &ins,
            |m| m.planes[0].write_slice(0, &[5.0; 8]),
            &[(Store::Plane(1), 0, 8)],
        );
    }

    #[test]
    fn starving_write_falls_back_to_the_interpreter() {
        let kb = kb();
        let mut ins = MicroInstruction::empty(&kb);
        *ins.plane_rd_mut(PlaneId(0)) = PlaneDmaField::contiguous(0, 4);
        *ins.plane_wr_mut(PlaneId(1)) = PlaneDmaField::contiguous(0, 4);
        // No routes: the interpreter hangs, so the planner must refuse.
        assert!(plan_instruction(&kb, &ins).is_none());
    }

    #[test]
    fn overlapping_read_and_write_ranges_fall_back() {
        let kb = kb();
        let mut ins = copy_instr(&kb, 16);
        // Write on top of the read range in the same plane.
        *ins.plane_wr_mut(PlaneId(1)) = PlaneDmaField::idle();
        *ins.plane_wr_mut(PlaneId(0)) = PlaneDmaField::contiguous(8, 16);
        ins.switch.route(&kb, SourceRef::Fu(FuId(0)), SinkRef::PlaneWrite(PlaneId(0)));
        assert!(plan_instruction(&kb, &ins).is_none());
    }

    #[test]
    fn specialization_covers_disjoint_in_place_updates() {
        let kb = kb();
        let mut ins = copy_instr(&kb, 16);
        // Same plane, disjoint ranges: stays specialized.
        *ins.plane_wr_mut(PlaneId(1)) = PlaneDmaField::idle();
        *ins.plane_wr_mut(PlaneId(0)) = PlaneDmaField::contiguous(100, 16);
        ins.switch.route(&kb, SourceRef::Fu(FuId(0)), SinkRef::PlaneWrite(PlaneId(0)));
        assert_identical(
            &kb,
            &ins,
            |m| m.planes[0].write_slice(0, &(0..16).map(|i| i as f64).collect::<Vec<_>>()),
            &[(Store::Plane(0), 100, 16)],
        );
    }

    #[test]
    fn kernel_compiles_whole_programs() {
        let kb = kb();
        let mut b = nsc_microcode::ProgramBuilder::new(&kb, "two");
        b.push(copy_instr(&kb, 8));
        b.push(MicroInstruction::empty(&kb));
        let prog = b.finish();
        let kernel = CompiledKernel::compile(&kb, &prog);
        assert_eq!(kernel.instructions(), 2);
        assert_eq!(kernel.specialized(), 2);
    }
}
