//! # nsc-sim — a cycle-level simulator for the Navier-Stokes Computer
//!
//! The machine the paper targets was never completed — "there is no means
//! of running actual NSC programs" (§4) — so this crate provides the
//! substitute substrate (DESIGN.md substitution table): a functional,
//! cycle-level model of one NSC node that executes the microcode emitted by
//! `nsc-codegen`, plus the hypercube system of nodes connected by the
//! hyperspace router.
//!
//! The node model follows §2 exactly:
//!
//! * per-plane and per-cache **DMA controllers** "pump data through the
//!   pipelines" at one word per clock;
//! * **functional units** consume one element per clock once full, with the
//!   pipeline depths of [`nsc_arch::LatencyTable`];
//! * **register files** provide constants, feedback accumulators and the
//!   circular delay queues that align vector streams;
//! * **shift/delay units** re-emit one input stream on delayed taps;
//! * the **sequencer** walks the instruction list, presetting loop
//!   counters, and the **interrupt scheme** signals pipeline completion,
//!   evaluates convergence conditions against cache scalars, and counts
//!   arithmetic exceptions;
//! * performance counters report cycles and FLOPs so that a saturated node
//!   measurably approaches the published 640 MFLOPS peak (experiment T1).
//!
//! Two execution paths share these semantics: the lockstep interpreter in
//! [`exec`] (the reference model) and the host fast path in [`kernel`],
//! which specializes instructions into flat element loops at compile time
//! while charging identical simulated cycles. See `ARCHITECTURE.md` at the
//! repository root for how the paths fit into the wider pipeline.

#![warn(missing_docs)]

pub mod counters;
pub mod exec;
pub mod kernel;
pub mod memory;
pub mod node;
pub mod system;

pub use self::counters::PerfCounters;
pub use self::exec::{ExecError, SourceTrace};
pub use self::kernel::{CompiledKernel, KernelPlanSummary};
pub use self::memory::{DataCache, MemoryPlane, NodeMemory};
pub use self::node::{HaltReason, NodeSim, RunOptions, RunStats};
pub use self::system::{NodeExecError, NscSystem};
