//! Performance counters: how the simulator grounds the paper's numbers.
//!
//! The published peak is 640 MFLOPS per node (32 units x 20 MHz); the
//! counters measure what generated programs actually achieve against it
//! (experiment T1) and provide the simulated-time axis for the solver
//! experiments.

use serde::{Deserialize, Serialize};

/// Cumulative counters of one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerfCounters {
    /// Clock cycles elapsed (instruction setup + streaming + drain).
    pub cycles: u64,
    /// Microinstructions executed.
    pub instructions: u64,
    /// Floating-point results produced (MFLOPS numerator).
    pub flops: u64,
    /// Words streamed out of planes and caches.
    pub elements_streamed: u64,
    /// Words stored into planes and caches.
    pub elements_stored: u64,
    /// Pipeline-completion interrupts raised.
    pub completion_interrupts: u64,
    /// Arithmetic exceptions trapped (non-finite results).
    pub exceptions: u64,
    /// Simulated nanoseconds this node spent in hyperspace-router
    /// communication (halo exchanges, reductions). Charged by
    /// `NscSystem::exchange`; independent of the clock-cycle count.
    pub comm_ns: u64,
    /// The portion of `comm_ns` that was *hidden* under concurrently
    /// issued compute — messages charged inside an overlappable
    /// communication window (`NscSystem::open_comm_window`). Hidden time
    /// does not extend the node's wall clock: only the non-overlapped
    /// remainder `comm_ns - comm_hidden_ns` does.
    pub comm_hidden_ns: u64,
}

impl PerfCounters {
    /// Simulated wall time at a clock rate.
    pub fn seconds(&self, clock_hz: u64) -> f64 {
        self.cycles as f64 / clock_hz as f64
    }

    /// Achieved MFLOPS at a clock rate.
    pub fn mflops(&self, clock_hz: u64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.flops as f64 / self.seconds(clock_hz) / 1.0e6
    }

    /// Simulated wall time including router communication: compute cycles
    /// at the clock rate plus the *non-overlapped* remainder of this
    /// node's message time (messages hidden under an overlap window cost
    /// no wall clock).
    pub fn seconds_with_comm(&self, clock_hz: u64) -> f64 {
        self.seconds(clock_hz) + self.comm_ns.saturating_sub(self.comm_hidden_ns) as f64 * 1e-9
    }

    /// Fraction of the machine's peak achieved.
    pub fn efficiency(&self, clock_hz: u64, peak_mflops: f64) -> f64 {
        self.mflops(clock_hz) / peak_mflops
    }

    /// The counters accumulated since an earlier snapshot of the same
    /// node — per-run deltas for drivers that reuse a node across runs.
    pub fn since(&self, earlier: &PerfCounters) -> PerfCounters {
        PerfCounters {
            cycles: self.cycles.saturating_sub(earlier.cycles),
            instructions: self.instructions.saturating_sub(earlier.instructions),
            flops: self.flops.saturating_sub(earlier.flops),
            elements_streamed: self.elements_streamed.saturating_sub(earlier.elements_streamed),
            elements_stored: self.elements_stored.saturating_sub(earlier.elements_stored),
            completion_interrupts: self
                .completion_interrupts
                .saturating_sub(earlier.completion_interrupts),
            exceptions: self.exceptions.saturating_sub(earlier.exceptions),
            comm_ns: self.comm_ns.saturating_sub(earlier.comm_ns),
            comm_hidden_ns: self.comm_hidden_ns.saturating_sub(earlier.comm_hidden_ns),
        }
    }

    /// Merge counters of *sequential* work on the same node: everything
    /// sums, including elapsed cycles.
    pub fn accumulate(&mut self, other: &PerfCounters) {
        self.cycles += other.cycles;
        self.instructions += other.instructions;
        self.flops += other.flops;
        self.elements_streamed += other.elements_streamed;
        self.elements_stored += other.elements_stored;
        self.completion_interrupts += other.completion_interrupts;
        self.exceptions += other.exceptions;
        self.comm_ns += other.comm_ns;
        self.comm_hidden_ns += other.comm_hidden_ns;
    }

    /// Merge another node's counters (for system totals).
    pub fn absorb(&mut self, other: &PerfCounters) {
        self.cycles = self.cycles.max(other.cycles); // parallel nodes overlap
        self.instructions += other.instructions;
        self.flops += other.flops;
        self.elements_streamed += other.elements_streamed;
        self.elements_stored += other.elements_stored;
        self.completion_interrupts += other.completion_interrupts;
        self.exceptions += other.exceptions;
        self.comm_ns = self.comm_ns.max(other.comm_ns); // messages overlap too
        self.comm_hidden_ns = self.comm_hidden_ns.max(other.comm_hidden_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mflops_math() {
        let c = PerfCounters { cycles: 20_000_000, flops: 640_000_000, ..Default::default() };
        // 1 second at 20 MHz with 640M flops = 640 MFLOPS = peak.
        assert!((c.seconds(20_000_000) - 1.0).abs() < 1e-12);
        assert!((c.mflops(20_000_000) - 640.0).abs() < 1e-9);
        assert!((c.efficiency(20_000_000, 640.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_is_zero_mflops() {
        assert_eq!(PerfCounters::default().mflops(20_000_000), 0.0);
    }

    #[test]
    fn since_returns_the_per_run_delta() {
        let before = PerfCounters { cycles: 100, flops: 50, instructions: 2, ..Default::default() };
        let after = PerfCounters { cycles: 180, flops: 90, instructions: 5, ..Default::default() };
        let delta = after.since(&before);
        assert_eq!(delta.cycles, 80);
        assert_eq!(delta.flops, 40);
        assert_eq!(delta.instructions, 3);
        assert_eq!(before.since(&after).cycles, 0, "reversed snapshots saturate");
    }

    #[test]
    fn accumulate_sums_sequential_time() {
        let mut a = PerfCounters { cycles: 100, flops: 50, ..Default::default() };
        a.accumulate(&PerfCounters { cycles: 120, flops: 70, ..Default::default() });
        assert_eq!(a.cycles, 220, "sequential runs: elapsed time adds");
        assert_eq!(a.flops, 120);
    }

    #[test]
    fn absorb_overlaps_time_and_sums_work() {
        let mut a = PerfCounters { cycles: 100, flops: 50, instructions: 1, ..Default::default() };
        let b = PerfCounters { cycles: 120, flops: 70, instructions: 2, ..Default::default() };
        a.absorb(&b);
        assert_eq!(a.cycles, 120, "parallel nodes: elapsed time is the max");
        assert_eq!(a.flops, 120, "work adds");
        assert_eq!(a.instructions, 3);
    }

    #[test]
    fn comm_time_overlaps_across_nodes_and_adds_sequentially() {
        let mut a = PerfCounters { cycles: 100, comm_ns: 500, ..Default::default() };
        a.accumulate(&PerfCounters { comm_ns: 300, ..Default::default() });
        assert_eq!(a.comm_ns, 800, "sequential messages add");
        a.absorb(&PerfCounters { comm_ns: 2_000, ..Default::default() });
        assert_eq!(a.comm_ns, 2_000, "concurrent nodes overlap their messages");
        // 100 cycles at 20 MHz = 5 us compute, plus 2 us of messages.
        assert!((a.seconds_with_comm(20_000_000) - 7e-6).abs() < 1e-12);
        let delta = a.since(&PerfCounters { comm_ns: 1_500, ..Default::default() });
        assert_eq!(delta.comm_ns, 500);
    }

    #[test]
    fn hidden_comm_does_not_extend_the_wall_clock() {
        // 100 cycles at 20 MHz = 5 us compute; 2 us of messages, 1.5 us of
        // which overlapped the compute: only 0.5 us extends the clock.
        let c = PerfCounters {
            cycles: 100,
            comm_ns: 2_000,
            comm_hidden_ns: 1_500,
            ..Default::default()
        };
        assert!((c.seconds_with_comm(20_000_000) - 5.5e-6).abs() < 1e-15);
        let mut a = c;
        a.accumulate(&PerfCounters { comm_ns: 300, comm_hidden_ns: 300, ..Default::default() });
        assert_eq!(a.comm_hidden_ns, 1_800, "sequential windows add");
        let d = a.since(&c);
        assert_eq!((d.comm_ns, d.comm_hidden_ns), (300, 300));
    }
}
