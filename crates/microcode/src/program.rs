//! Microcode programs: instruction sequences plus a disassembler.
//!
//! A program is what the microcode generator emits and the simulator runs:
//! an ordered list of [`MicroInstruction`]s with optional labels. The
//! disassembler renders the "reams of textual microassembler code" the
//! paper contrasts the visual environment against (§6) — useful both for
//! debugging and for the programming-effort experiment T3.

use crate::fu_field::FuInputSel;
use crate::instr::MicroInstruction;
use crate::seq::SeqCtl;
use nsc_arch::KnowledgeBase;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An executable microcode program.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MicroProgram {
    /// Name of the machine configuration this program was generated for.
    pub machine: String,
    /// Program name (diagram document title).
    pub name: String,
    /// The instructions, executed from index 0.
    pub instrs: Vec<MicroInstruction>,
    /// Optional labels, keyed by instruction index.
    pub labels: HashMap<usize, String>,
}

impl MicroProgram {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Total encoded size of the program in bits.
    pub fn total_bits(&self, kb: &KnowledgeBase) -> u64 {
        MicroInstruction::encoded_bits(kb) as u64 * self.instrs.len() as u64
    }

    /// Encode every instruction, concatenated (each byte-aligned).
    pub fn encode(&self, kb: &KnowledgeBase) -> Vec<Vec<u8>> {
        self.instrs.iter().map(|i| i.encode(kb)).collect()
    }

    /// Disassemble to text.
    pub fn disassemble(&self, kb: &KnowledgeBase) -> String {
        let mut out = String::new();
        out.push_str(&format!("; program '{}' for {}\n", self.name, self.machine));
        out.push_str(&format!(
            "; {} instruction(s), {} bits each\n",
            self.instrs.len(),
            MicroInstruction::encoded_bits(kb)
        ));
        for (idx, ins) in self.instrs.iter().enumerate() {
            if let Some(label) = self.labels.get(&idx) {
                out.push_str(&format!("{label}:\n"));
            }
            out.push_str(&format!("I{idx}:\n"));
            for fu in ins.enabled_fus() {
                let f = ins.fu(fu);
                out.push_str(&format!(
                    "  {:<5} {:<5} a={:<12} b={:<12}",
                    fu.to_string(),
                    f.op.mnemonic(),
                    sel_str(f.in_a),
                    sel_str(f.in_b)
                ));
                if let Some(v) = f.preload {
                    out.push_str(&format!(" rf[{}]={v}", f.const_slot));
                }
                out.push('\n');
            }
            for (sink, source) in ins.switch.iter_routes(kb) {
                out.push_str(&format!("  SW    {source} -> {sink}\n"));
            }
            for (i, d) in ins.plane_rd.iter().enumerate() {
                if d.enabled {
                    out.push_str(&format!(
                        "  DMA   MP{i}.rd base={} stride={} count={}\n",
                        d.base, d.stride, d.count
                    ));
                }
            }
            for (i, d) in ins.plane_wr.iter().enumerate() {
                if d.enabled {
                    out.push_str(&format!(
                        "  DMA   MP{i}.wr base={} stride={} count={} mode={:?}\n",
                        d.base, d.stride, d.count, d.mode
                    ));
                }
            }
            for (i, d) in ins.cache_rd.iter().enumerate() {
                if d.enabled {
                    out.push_str(&format!(
                        "  DMA   DC{i}.rd off={} stride={} count={} buf={}\n",
                        d.offset, d.stride, d.count, d.buffer
                    ));
                }
            }
            for (i, d) in ins.cache_wr.iter().enumerate() {
                if d.enabled {
                    out.push_str(&format!(
                        "  DMA   DC{i}.wr off={} stride={} count={} buf={} mode={:?}\n",
                        d.offset, d.stride, d.count, d.buffer, d.mode
                    ));
                }
            }
            for (i, s) in ins.sdus.iter().enumerate() {
                if s.enabled {
                    let taps: Vec<String> =
                        s.taps.iter().filter(|t| t.enabled).map(|t| t.delay.to_string()).collect();
                    out.push_str(&format!("  SDU{i}  delays: {}\n", taps.join(",")));
                }
            }
            if let Some(c) = &ins.seq.cond {
                out.push_str(&format!(
                    "  SEQ   if {}[{}] {} {:e} goto I{}\n",
                    c.cache,
                    c.offset,
                    c.cmp.mnemonic(),
                    c.threshold,
                    c.target
                ));
            }
            if let Some((ctr, val)) = ins.seq.set_counter {
                out.push_str(&format!("  SEQ   ctr{ctr} := {val}\n"));
            }
            match ins.seq.ctl {
                SeqCtl::Next => {}
                SeqCtl::Jump(t) => out.push_str(&format!("  SEQ   goto I{t}\n")),
                SeqCtl::DecJnz { ctr, target } => {
                    out.push_str(&format!("  SEQ   dec ctr{ctr}, jnz I{target}\n"))
                }
                SeqCtl::Halt => out.push_str("  SEQ   halt\n"),
            }
        }
        out
    }
}

fn sel_str(sel: FuInputSel) -> String {
    match sel {
        FuInputSel::Switch => "switch".to_string(),
        FuInputSel::Constant(s) => format!("rf[{s}]"),
        FuInputSel::Queue(d) => format!("queue({d})"),
        FuInputSel::Feedback(s) => format!("feedback({s})"),
    }
}

/// Incremental builder used by the microcode generator.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    machine: String,
    name: String,
    instrs: Vec<MicroInstruction>,
    labels: HashMap<usize, String>,
}

impl ProgramBuilder {
    /// Start a program for the given machine.
    pub fn new(kb: &KnowledgeBase, name: impl Into<String>) -> Self {
        ProgramBuilder {
            machine: kb.config().name.clone(),
            name: name.into(),
            instrs: Vec::new(),
            labels: HashMap::new(),
        }
    }

    /// Index the next pushed instruction will get.
    pub fn next_index(&self) -> usize {
        self.instrs.len()
    }

    /// Attach a label to the next pushed instruction.
    pub fn label(&mut self, text: impl Into<String>) -> &mut Self {
        self.labels.insert(self.instrs.len(), text.into());
        self
    }

    /// Append an instruction, returning its index.
    pub fn push(&mut self, ins: MicroInstruction) -> usize {
        self.instrs.push(ins);
        self.instrs.len() - 1
    }

    /// Access a pushed instruction for patching (e.g. branch targets).
    pub fn instr_mut(&mut self, idx: usize) -> &mut MicroInstruction {
        &mut self.instrs[idx]
    }

    /// Finish the program.
    pub fn finish(self) -> MicroProgram {
        MicroProgram {
            machine: self.machine,
            name: self.name,
            instrs: self.instrs,
            labels: self.labels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dma::PlaneDmaField;
    use crate::fu_field::FuField;
    use nsc_arch::{FuId, FuOp, InPort, PlaneId, SinkRef, SourceRef};

    fn small_program(kb: &KnowledgeBase) -> MicroProgram {
        let mut b = ProgramBuilder::new(kb, "axpy");
        let mut ins = MicroInstruction::empty(kb);
        *ins.fu_mut(FuId(0)) = FuField::active(FuOp::Mul);
        *ins.plane_rd_mut(PlaneId(0)) = PlaneDmaField::contiguous(0, 16);
        ins.switch.route(kb, SourceRef::PlaneRead(PlaneId(0)), SinkRef::FuIn(FuId(0), InPort::A));
        ins.switch.route(kb, SourceRef::Fu(FuId(0)), SinkRef::PlaneWrite(PlaneId(1)));
        *ins.plane_wr_mut(PlaneId(1)) = PlaneDmaField::contiguous(0, 16);
        ins.seq = crate::seq::SequencerField::halt();
        b.label("main");
        b.push(ins);
        b.finish()
    }

    #[test]
    fn builder_assembles_programs() {
        let kb = KnowledgeBase::nsc_1988();
        let p = small_program(&kb);
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
        assert_eq!(p.labels.get(&0).map(String::as_str), Some("main"));
        assert_eq!(p.machine, "NSC (1988 sizing)");
    }

    #[test]
    fn total_bits_scales_with_length() {
        let kb = KnowledgeBase::nsc_1988();
        let p = small_program(&kb);
        assert_eq!(p.total_bits(&kb), MicroInstruction::encoded_bits(&kb) as u64);
    }

    #[test]
    fn encode_emits_one_blob_per_instruction() {
        let kb = KnowledgeBase::nsc_1988();
        let p = small_program(&kb);
        let blobs = p.encode(&kb);
        assert_eq!(blobs.len(), 1);
        let back = MicroInstruction::decode(&kb, &blobs[0]).unwrap();
        assert_eq!(back, p.instrs[0]);
    }

    #[test]
    fn disassembly_mentions_the_moving_parts() {
        let kb = KnowledgeBase::nsc_1988();
        let p = small_program(&kb);
        let asm = p.disassemble(&kb);
        assert!(asm.contains("axpy"));
        assert!(asm.contains("main:"));
        assert!(asm.contains("FU0"));
        assert!(asm.contains("MUL"));
        assert!(asm.contains("MP0.rd"));
        assert!(asm.contains("MP1.wr"));
        assert!(asm.contains("halt"));
    }

    #[test]
    fn builder_patches_branch_targets() {
        let kb = KnowledgeBase::nsc_1988();
        let mut b = ProgramBuilder::new(&kb, "loop");
        let i0 = b.push(MicroInstruction::empty(&kb));
        let i1 = b.push(MicroInstruction::empty(&kb));
        b.instr_mut(i0).seq.ctl = SeqCtl::Jump(i1 as u16);
        b.instr_mut(i1).seq.ctl = SeqCtl::Halt;
        let p = b.finish();
        assert_eq!(p.instrs[0].seq.ctl, SeqCtl::Jump(1));
        assert_eq!(p.instrs[1].seq.ctl, SeqCtl::Halt);
    }
}
