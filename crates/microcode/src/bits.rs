//! Bit-exact serialization primitives for the microcode word.
//!
//! Microinstructions are streams of fields with odd widths (1-bit enables,
//! 6-bit opcodes, 24-bit addresses, 64-bit constants); [`BitWriter`] packs
//! them MSB-first into a byte buffer and [`BitReader`] unpacks them. The
//! encoded length in bits is tracked exactly so experiment T2 can report
//! the true instruction width.

use bytes::{BufMut, BytesMut};

/// MSB-first bit packer.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: BytesMut,
    /// Bits of the final partial byte already used (0..8).
    partial_bits: u32,
    /// Total bits written.
    len_bits: usize,
}

impl BitWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append the low `width` bits of `value`, MSB first.
    ///
    /// # Panics
    /// If `width > 64` or `value` has bits above `width`.
    pub fn write(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "width {width} > 64");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value:#x} does not fit in {width} bits"
        );
        let mut remaining = width;
        while remaining > 0 {
            if self.partial_bits == 0 {
                self.buf.put_u8(0);
            }
            let free = 8 - self.partial_bits;
            let take = free.min(remaining);
            let shift = remaining - take;
            let chunk = ((value >> shift) & ((1u64 << take) - 1)) as u8;
            let last = self.buf.len() - 1;
            self.buf[last] |= chunk << (free - take);
            self.partial_bits = (self.partial_bits + take) % 8;
            remaining -= take;
        }
        self.len_bits += width as usize;
    }

    /// Append a boolean as one bit.
    pub fn write_bool(&mut self, v: bool) {
        self.write(v as u64, 1);
    }

    /// Append a signed value in `width`-bit two's complement.
    pub fn write_signed(&mut self, value: i64, width: u32) {
        assert!((1..=64).contains(&width));
        if width < 64 {
            let min = -(1i64 << (width - 1));
            let max = (1i64 << (width - 1)) - 1;
            assert!(value >= min && value <= max, "{value} does not fit in i{width}");
        }
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        self.write((value as u64) & mask, width);
    }

    /// Append a full f64 as its 64 IEEE bits.
    pub fn write_f64(&mut self, v: f64) {
        self.write(v.to_bits(), 64);
    }

    /// Total bits written so far.
    pub fn len_bits(&self) -> usize {
        self.len_bits
    }

    /// Finish, returning the packed bytes (final byte zero-padded).
    pub fn finish(self) -> Vec<u8> {
        self.buf.to_vec()
    }
}

/// MSB-first bit unpacker.
#[derive(Debug)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos_bits: usize,
}

/// Error produced when a reader runs off the end of its buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitUnderflow {
    /// Bit position at which the read was attempted.
    pub at_bit: usize,
    /// Width requested.
    pub width: u32,
}

impl std::fmt::Display for BitUnderflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bit underflow: read of {} bits at bit {}", self.width, self.at_bit)
    }
}

impl std::error::Error for BitUnderflow {}

impl<'a> BitReader<'a> {
    /// Reader over packed bytes.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos_bits: 0 }
    }

    /// Read `width` bits MSB-first.
    pub fn read(&mut self, width: u32) -> Result<u64, BitUnderflow> {
        assert!(width <= 64);
        if self.pos_bits + width as usize > self.buf.len() * 8 {
            return Err(BitUnderflow { at_bit: self.pos_bits, width });
        }
        let mut out: u64 = 0;
        let mut remaining = width;
        while remaining > 0 {
            let byte = self.buf[self.pos_bits / 8];
            let used = (self.pos_bits % 8) as u32;
            let avail = 8 - used;
            let take = avail.min(remaining);
            let chunk = (byte >> (avail - take)) & ((1u16 << take) - 1) as u8;
            out = (out << take) | chunk as u64;
            self.pos_bits += take as usize;
            remaining -= take;
        }
        Ok(out)
    }

    /// Read one bit as a boolean.
    pub fn read_bool(&mut self) -> Result<bool, BitUnderflow> {
        Ok(self.read(1)? != 0)
    }

    /// Read a `width`-bit two's-complement value.
    pub fn read_signed(&mut self, width: u32) -> Result<i64, BitUnderflow> {
        let raw = self.read(width)?;
        if width == 64 {
            return Ok(raw as i64);
        }
        let sign = 1u64 << (width - 1);
        Ok(if raw & sign != 0 { (raw | !((1u64 << width) - 1)) as i64 } else { raw as i64 })
    }

    /// Read 64 bits as an f64.
    pub fn read_f64(&mut self) -> Result<f64, BitUnderflow> {
        Ok(f64::from_bits(self.read(64)?))
    }

    /// Current bit position.
    pub fn pos_bits(&self) -> usize {
        self.pos_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_field_round_trip() {
        let mut w = BitWriter::new();
        w.write(0b101, 3);
        assert_eq!(w.len_bits(), 3);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1010_0000]);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(3).unwrap(), 0b101);
    }

    #[test]
    fn fields_pack_across_byte_boundaries() {
        let mut w = BitWriter::new();
        w.write(0x3F, 6);
        w.write(0x1FF, 9);
        w.write(1, 1);
        let bytes = w.finish();
        assert_eq!(w_len(&bytes), 2); // 16 bits = 2 bytes
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(6).unwrap(), 0x3F);
        assert_eq!(r.read(9).unwrap(), 0x1FF);
        assert_eq!(r.read(1).unwrap(), 1);
        fn w_len(b: &[u8]) -> usize {
            b.len()
        }
    }

    #[test]
    fn signed_round_trip() {
        let mut w = BitWriter::new();
        w.write_signed(-1, 16);
        w.write_signed(-4096, 16);
        w.write_signed(32767, 16);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_signed(16).unwrap(), -1);
        assert_eq!(r.read_signed(16).unwrap(), -4096);
        assert_eq!(r.read_signed(16).unwrap(), 32767);
    }

    #[test]
    fn f64_round_trip_preserves_bits() {
        for v in [0.0, -0.0, 1.0 / 6.0, f64::INFINITY, f64::MIN_POSITIVE, 1e-300] {
            let mut w = BitWriter::new();
            w.write_f64(v);
            let bytes = w.finish();
            let back = BitReader::new(&bytes).read_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn underflow_is_reported() {
        let bytes = [0xFFu8];
        let mut r = BitReader::new(&bytes);
        r.read(6).unwrap();
        let err = r.read(6).unwrap_err();
        assert_eq!(err.at_bit, 6);
        assert_eq!(err.width, 6);
        assert!(err.to_string().contains("underflow"));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        BitWriter::new().write(8, 3);
    }

    #[test]
    fn full_width_64_is_allowed() {
        let mut w = BitWriter::new();
        w.write(u64::MAX, 64);
        let bytes = w.finish();
        assert_eq!(BitReader::new(&bytes).read(64).unwrap(), u64::MAX);
    }

    proptest! {
        #[test]
        fn prop_mixed_fields_round_trip(fields in prop::collection::vec((0u64..u64::MAX, 1u32..=64), 1..64)) {
            let mut w = BitWriter::new();
            let mut expect = Vec::new();
            for (v, width) in fields {
                let masked = if width == 64 { v } else { v & ((1u64 << width) - 1) };
                w.write(masked, width);
                expect.push((masked, width));
            }
            let total = w.len_bits();
            let bytes = w.finish();
            prop_assert_eq!(bytes.len(), total.div_ceil(8));
            let mut r = BitReader::new(&bytes);
            for (v, width) in expect {
                prop_assert_eq!(r.read(width).unwrap(), v);
            }
        }

        #[test]
        fn prop_signed_round_trip(v in i64::MIN..i64::MAX, width in 1u32..=64) {
            let clamped = if width == 64 { v } else {
                let min = -(1i64 << (width - 1));
                let max = (1i64 << (width - 1)) - 1;
                v.clamp(min, max)
            };
            let mut w = BitWriter::new();
            w.write_signed(clamped, width);
            let bytes = w.finish();
            prop_assert_eq!(BitReader::new(&bytes).read_signed(width).unwrap(), clamped);
        }
    }
}
