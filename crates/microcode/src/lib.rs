//! # nsc-microcode — the NSC microinstruction word
//!
//! Paper §3: "the NSC lacks anything resembling a conventional assembly
//! language. Each instruction must be specified in a complex hierarchical
//! microcode which contains specific control for every function unit,
//! register file, switch setting, DMA unit, etc. The effect of an
//! instruction is to completely specify the pipeline configuration and
//! function unit operations for the entire machine. This requires a few
//! thousand bits of information per instruction, encoded in dozens of
//! separate fields."
//!
//! This crate defines that instruction word exactly:
//!
//! * [`FuField`] — per-functional-unit control: enable, opcode, two operand
//!   input selectors (switch / register-file constant / circular delay
//!   queue / feedback), and a register-file constant preload;
//! * [`SwitchTable`] — one source-select per switch sink (the FLONET
//!   program);
//! * [`PlaneDmaField`] / [`CacheDmaField`] — the DMA controllers that "pump
//!   data through the pipelines";
//! * [`SduField`] — shift/delay-unit tap programming;
//! * [`SequencerField`] — the central sequencer: fall-through, jumps,
//!   counted loops, and the interrupt-evaluated conditional branch used for
//!   convergence tests.
//!
//! [`MicroInstruction::encode`] packs all of it bit-exactly (via
//! [`bits::BitWriter`]) and [`MicroInstruction::decode`] recovers it;
//! experiment T2 measures the encoded width and field census against the
//! paper's "few thousand bits ... dozens of fields" claim.

pub mod bits;
pub mod census;
pub mod dma;
pub mod fu_field;
pub mod instr;
pub mod program;
pub mod sdu_field;
pub mod seq;
pub mod switch_table;

pub use self::bits::{BitReader, BitWriter};
pub use self::census::{Census, FieldGroup};
pub use self::dma::{CacheDmaField, PlaneDmaField, WriteMode};
pub use self::fu_field::{FuField, FuInputSel};
pub use self::instr::MicroInstruction;
pub use self::program::{MicroProgram, ProgramBuilder};
pub use self::sdu_field::{SduField, SduTapField};
pub use self::seq::{CmpKind, CondBranch, SeqCtl, SequencerField};
pub use self::switch_table::SwitchTable;
