//! The central sequencer field: control flow between pipeline instructions.
//!
//! Paper §2: "A central sequencer provides high-level control flow ... An
//! elaborate interrupt scheme is used to signal pipeline completions,
//! evaluate conditional expressions, and trap exceptions." In this model
//! every instruction runs to pipeline completion (the completion interrupt),
//! after which the sequencer consults its field: an optional conditional
//! branch evaluated against a scalar in a data cache (how the Jacobi example
//! implements its residual convergence check), then the unconditional
//! control — fall through, jump, counted loop, or halt.

use crate::bits::{BitReader, BitUnderflow, BitWriter};
use nsc_arch::CacheId;
use serde::{Deserialize, Serialize};

/// Comparison evaluated by the interrupt logic against a cache scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpKind {
    /// Branch if `value < threshold`.
    Lt,
    /// Branch if `value >= threshold`.
    Ge,
    /// Branch if `value == threshold` (exact).
    Eq,
    /// Branch if `value != threshold` (exact).
    Ne,
}

impl CmpKind {
    /// Evaluate the comparison.
    pub fn eval(self, value: f64, threshold: f64) -> bool {
        match self {
            CmpKind::Lt => value < threshold,
            CmpKind::Ge => value >= threshold,
            CmpKind::Eq => value == threshold,
            CmpKind::Ne => value != threshold,
        }
    }

    fn code(self) -> u64 {
        match self {
            CmpKind::Lt => 0,
            CmpKind::Ge => 1,
            CmpKind::Eq => 2,
            CmpKind::Ne => 3,
        }
    }

    fn from_code(c: u64) -> Self {
        match c {
            0 => CmpKind::Lt,
            1 => CmpKind::Ge,
            2 => CmpKind::Eq,
            _ => CmpKind::Ne,
        }
    }

    /// Mnemonic for the disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpKind::Lt => "LT",
            CmpKind::Ge => "GE",
            CmpKind::Eq => "EQ",
            CmpKind::Ne => "NE",
        }
    }
}

/// A conditional branch evaluated after pipeline completion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CondBranch {
    /// Cache holding the scalar to test.
    pub cache: CacheId,
    /// Word offset of the scalar within the cache's buffer 0.
    pub offset: u16,
    /// Comparison to apply.
    pub cmp: CmpKind,
    /// Threshold operand.
    pub threshold: f64,
    /// Instruction index to branch to when the comparison holds.
    pub target: u16,
}

impl CondBranch {
    const BITS: u32 = 4 + 13 + 2 + 64 + 16;
}

/// Unconditional sequencer control, applied when no conditional branch
/// fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SeqCtl {
    /// Proceed to the next instruction.
    #[default]
    Next,
    /// Jump to the given instruction index.
    Jump(u16),
    /// Decrement loop counter `ctr`; jump to `target` while it is nonzero.
    DecJnz {
        /// Which of the sequencer's 16 loop counters to decrement.
        ctr: u8,
        /// Branch target while the counter is nonzero.
        target: u16,
    },
    /// Stop the program.
    Halt,
}

impl SeqCtl {
    const BITS: u32 = 2 + 4 + 16;
}

/// The complete sequencer field of one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SequencerField {
    /// Loop-counter preset executed when the instruction is *entered from
    /// fall-through or jump* (not when re-entered via its own `DecJnz`):
    /// `(counter, value)`.
    pub set_counter: Option<(u8, u32)>,
    /// Conditional branch evaluated first (the interrupt scheme's
    /// "evaluate conditional expressions").
    pub cond: Option<CondBranch>,
    /// Unconditional control applied otherwise.
    pub ctl: SeqCtl,
}

impl SequencerField {
    /// Encoded width of the sequencer field.
    pub const BITS: u32 = (1 + 4 + 24) + (1 + CondBranch::BITS) + SeqCtl::BITS;
    /// Leaf fields (set-counter enable/idx/value, cond enable/cache/offset/
    /// cmp/threshold/target, ctl tag/ctr/target).
    pub const LEAF_FIELDS: usize = 12;

    /// Fall-through with no conditions.
    pub fn next() -> Self {
        Self::default()
    }

    /// Halt after this instruction.
    pub fn halt() -> Self {
        SequencerField { ctl: SeqCtl::Halt, ..Self::default() }
    }

    /// Pack into the writer.
    pub fn encode(&self, w: &mut BitWriter) {
        match self.set_counter {
            Some((ctr, val)) => {
                w.write_bool(true);
                w.write(ctr as u64, 4);
                w.write(val as u64, 24);
            }
            None => {
                w.write_bool(false);
                w.write(0, 4);
                w.write(0, 24);
            }
        }
        match &self.cond {
            Some(c) => {
                w.write_bool(true);
                w.write(c.cache.0 as u64, 4);
                w.write(c.offset as u64, 13);
                w.write(c.cmp.code(), 2);
                w.write_f64(c.threshold);
                w.write(c.target as u64, 16);
            }
            None => {
                w.write_bool(false);
                w.write(0, 4);
                w.write(0, 13);
                w.write(0, 2);
                w.write_f64(0.0);
                w.write(0, 16);
            }
        }
        let (tag, ctr, target) = match self.ctl {
            SeqCtl::Next => (0u64, 0u64, 0u64),
            SeqCtl::Jump(t) => (1, 0, t as u64),
            SeqCtl::DecJnz { ctr, target } => (2, ctr as u64, target as u64),
            SeqCtl::Halt => (3, 0, 0),
        };
        w.write(tag, 2);
        w.write(ctr, 4);
        w.write(target, 16);
    }

    /// Unpack from the reader.
    pub fn decode(r: &mut BitReader) -> Result<Self, BitUnderflow> {
        let has_set = r.read_bool()?;
        let ctr = r.read(4)? as u8;
        let val = r.read(24)? as u32;
        let set_counter = has_set.then_some((ctr, val));

        let has_cond = r.read_bool()?;
        let cache = CacheId(r.read(4)? as u8);
        let offset = r.read(13)? as u16;
        let cmp = CmpKind::from_code(r.read(2)?);
        let threshold = r.read_f64()?;
        let target = r.read(16)? as u16;
        let cond = has_cond.then_some(CondBranch { cache, offset, cmp, threshold, target });

        let tag = r.read(2)?;
        let c = r.read(4)? as u8;
        let t = r.read(16)? as u16;
        let ctl = match tag {
            0 => SeqCtl::Next,
            1 => SeqCtl::Jump(t),
            2 => SeqCtl::DecJnz { ctr: c, target: t },
            _ => SeqCtl::Halt,
        };
        Ok(SequencerField { set_counter, cond, ctl })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(s: &SequencerField) -> SequencerField {
        let mut w = BitWriter::new();
        s.encode(&mut w);
        assert_eq!(w.len_bits(), SequencerField::BITS as usize);
        let bytes = w.finish();
        SequencerField::decode(&mut BitReader::new(&bytes)).unwrap()
    }

    #[test]
    fn default_is_plain_fallthrough() {
        let s = SequencerField::next();
        assert_eq!(s.ctl, SeqCtl::Next);
        assert!(s.cond.is_none() && s.set_counter.is_none());
        assert_eq!(round_trip(&s), s);
    }

    #[test]
    fn convergence_check_round_trips() {
        // The Jacobi residual check: loop back to instruction 0 until the
        // residual scalar in cache 0, offset 0 drops below 1e-6.
        let s = SequencerField {
            set_counter: None,
            cond: Some(CondBranch {
                cache: CacheId(0),
                offset: 0,
                cmp: CmpKind::Ge,
                threshold: 1e-6,
                target: 0,
            }),
            ctl: SeqCtl::Halt,
        };
        assert_eq!(round_trip(&s), s);
    }

    #[test]
    fn counted_loop_round_trips() {
        let s = SequencerField {
            set_counter: Some((3, 1_000_000)),
            cond: None,
            ctl: SeqCtl::DecJnz { ctr: 3, target: 7 },
        };
        assert_eq!(round_trip(&s), s);
    }

    #[test]
    fn cmp_semantics() {
        assert!(CmpKind::Lt.eval(0.5, 1.0));
        assert!(!CmpKind::Lt.eval(1.0, 1.0));
        assert!(CmpKind::Ge.eval(1.0, 1.0));
        assert!(CmpKind::Eq.eval(2.0, 2.0));
        assert!(CmpKind::Ne.eval(2.0, 3.0));
    }

    #[test]
    fn cmp_mnemonics_unique() {
        let all = [CmpKind::Lt, CmpKind::Ge, CmpKind::Eq, CmpKind::Ne];
        let set: std::collections::HashSet<_> = all.iter().map(|c| c.mnemonic()).collect();
        assert_eq!(set.len(), 4);
    }

    proptest! {
        #[test]
        fn prop_sequencer_round_trips(
            set in prop::option::of((0u8..16, 0u32..(1<<24))),
            cond in prop::option::of((0u8..16, 0u16..(1<<13), 0u64..4, -1.0e9f64..1.0e9, any::<u16>())),
            tag in 0u64..4,
            ctr in 0u8..16,
            target in any::<u16>(),
        ) {
            let s = SequencerField {
                set_counter: set,
                cond: cond.map(|(c, o, k, th, t)| CondBranch {
                    cache: CacheId(c), offset: o, cmp: CmpKind::from_code(k),
                    threshold: th, target: t,
                }),
                ctl: match tag {
                    0 => SeqCtl::Next,
                    1 => SeqCtl::Jump(target),
                    2 => SeqCtl::DecJnz { ctr, target },
                    _ => SeqCtl::Halt,
                },
            };
            prop_assert_eq!(round_trip(&s), s);
        }
    }
}
