//! The complete microinstruction: "the effect of an instruction is to
//! completely specify the pipeline configuration and function unit
//! operations for the entire machine" (paper §3).

use crate::bits::{BitReader, BitUnderflow, BitWriter};
use crate::census::Census;
use crate::dma::{CacheDmaField, PlaneDmaField};
use crate::fu_field::FuField;
use crate::sdu_field::SduField;
use crate::seq::SequencerField;
use crate::switch_table::SwitchTable;
use nsc_arch::{CacheId, FuId, KnowledgeBase, PlaneId, SduId};
use serde::{Deserialize, Serialize};

/// One instruction word, structured. Vectors are indexed by resource id and
/// sized for a particular machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroInstruction {
    /// Control for every functional unit.
    pub fus: Vec<FuField>,
    /// The switch-network program.
    pub switch: SwitchTable,
    /// Read-side DMA for every memory plane.
    pub plane_rd: Vec<PlaneDmaField>,
    /// Write-side DMA for every memory plane.
    pub plane_wr: Vec<PlaneDmaField>,
    /// Read-side DMA for every cache.
    pub cache_rd: Vec<CacheDmaField>,
    /// Write-side DMA for every cache.
    pub cache_wr: Vec<CacheDmaField>,
    /// Control for every shift/delay unit.
    pub sdus: Vec<SduField>,
    /// Sequencer control.
    pub seq: SequencerField,
}

impl MicroInstruction {
    /// An all-idle instruction sized for the machine.
    pub fn empty(kb: &KnowledgeBase) -> Self {
        let cfg = kb.config();
        MicroInstruction {
            fus: vec![FuField::disabled(); cfg.fu_count()],
            switch: SwitchTable::empty(kb),
            plane_rd: vec![PlaneDmaField::idle(); cfg.memory.planes],
            plane_wr: vec![PlaneDmaField::idle(); cfg.memory.planes],
            cache_rd: vec![CacheDmaField::idle(); cfg.cache.caches],
            cache_wr: vec![CacheDmaField::idle(); cfg.cache.caches],
            sdus: vec![SduField::idle(); cfg.sdu.units],
            seq: SequencerField::next(),
        }
    }

    /// Mutable access to one FU field.
    pub fn fu_mut(&mut self, fu: FuId) -> &mut FuField {
        &mut self.fus[fu.index()]
    }

    /// One FU field.
    pub fn fu(&self, fu: FuId) -> &FuField {
        &self.fus[fu.index()]
    }

    /// Mutable plane read descriptor.
    pub fn plane_rd_mut(&mut self, p: PlaneId) -> &mut PlaneDmaField {
        &mut self.plane_rd[p.index()]
    }

    /// Mutable plane write descriptor.
    pub fn plane_wr_mut(&mut self, p: PlaneId) -> &mut PlaneDmaField {
        &mut self.plane_wr[p.index()]
    }

    /// Mutable cache read descriptor.
    pub fn cache_rd_mut(&mut self, c: CacheId) -> &mut CacheDmaField {
        &mut self.cache_rd[c.index()]
    }

    /// Mutable cache write descriptor.
    pub fn cache_wr_mut(&mut self, c: CacheId) -> &mut CacheDmaField {
        &mut self.cache_wr[c.index()]
    }

    /// Mutable SDU field.
    pub fn sdu_mut(&mut self, s: SduId) -> &mut SduField {
        &mut self.sdus[s.index()]
    }

    /// Functional units enabled in this instruction.
    pub fn enabled_fus(&self) -> impl Iterator<Item = FuId> + '_ {
        self.fus.iter().enumerate().filter(|(_, f)| f.enabled).map(|(i, _)| FuId(i as u8))
    }

    /// Exact encoded width in bits for this machine.
    pub fn encoded_bits(kb: &KnowledgeBase) -> u32 {
        Census::of_machine(kb).total_bits()
    }

    /// Pack the instruction into bytes (MSB-first bit stream).
    pub fn encode(&self, kb: &KnowledgeBase) -> Vec<u8> {
        let mut w = BitWriter::new();
        for f in &self.fus {
            f.encode(&mut w);
        }
        self.switch.encode(kb, &mut w);
        for d in self.plane_rd.iter().chain(&self.plane_wr) {
            d.encode(&mut w);
        }
        for d in self.cache_rd.iter().chain(&self.cache_wr) {
            d.encode(&mut w);
        }
        for s in &self.sdus {
            s.encode(&mut w);
        }
        self.seq.encode(&mut w);
        debug_assert_eq!(w.len_bits() as u32, Self::encoded_bits(kb));
        w.finish()
    }

    /// Unpack an instruction from bytes.
    pub fn decode(kb: &KnowledgeBase, bytes: &[u8]) -> Result<Self, BitUnderflow> {
        let cfg = kb.config();
        let mut r = BitReader::new(bytes);
        let mut fus = Vec::with_capacity(cfg.fu_count());
        for _ in 0..cfg.fu_count() {
            fus.push(FuField::decode(&mut r)?);
        }
        let switch = SwitchTable::decode(kb, &mut r)?;
        let mut plane_rd = Vec::with_capacity(cfg.memory.planes);
        for _ in 0..cfg.memory.planes {
            plane_rd.push(PlaneDmaField::decode(&mut r)?);
        }
        let mut plane_wr = Vec::with_capacity(cfg.memory.planes);
        for _ in 0..cfg.memory.planes {
            plane_wr.push(PlaneDmaField::decode(&mut r)?);
        }
        let mut cache_rd = Vec::with_capacity(cfg.cache.caches);
        for _ in 0..cfg.cache.caches {
            cache_rd.push(CacheDmaField::decode(&mut r)?);
        }
        let mut cache_wr = Vec::with_capacity(cfg.cache.caches);
        for _ in 0..cfg.cache.caches {
            cache_wr.push(CacheDmaField::decode(&mut r)?);
        }
        let mut sdus = Vec::with_capacity(cfg.sdu.units);
        for _ in 0..cfg.sdu.units {
            sdus.push(SduField::decode(&mut r)?);
        }
        let seq = SequencerField::decode(&mut r)?;
        Ok(MicroInstruction { fus, switch, plane_rd, plane_wr, cache_rd, cache_wr, sdus, seq })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dma::WriteMode;
    use crate::fu_field::FuInputSel;
    use crate::seq::{CmpKind, CondBranch, SeqCtl};
    use nsc_arch::{FuOp, InPort, SinkRef, SourceRef};

    fn kb() -> KnowledgeBase {
        KnowledgeBase::nsc_1988()
    }

    fn sample(kb: &KnowledgeBase) -> MicroInstruction {
        let mut ins = MicroInstruction::empty(kb);
        // FU0: add the streams on its two inputs.
        *ins.fu_mut(FuId(0)) = FuField::active(FuOp::Add);
        // FU2: running max with feedback initialized to 0.
        *ins.fu_mut(FuId(2)) = FuField {
            enabled: true,
            op: FuOp::MaxAbs,
            in_a: FuInputSel::Switch,
            in_b: FuInputSel::Feedback(0),
            const_slot: 0,
            preload: Some(0.0),
        };
        // Plane 0 streams 512 words to FU0.a; plane 1 to FU0.b.
        *ins.plane_rd_mut(PlaneId(0)) = PlaneDmaField::contiguous(0, 512);
        *ins.plane_rd_mut(PlaneId(1)) = PlaneDmaField::contiguous(1024, 512);
        ins.switch.route(kb, SourceRef::PlaneRead(PlaneId(0)), SinkRef::FuIn(FuId(0), InPort::A));
        ins.switch.route(kb, SourceRef::PlaneRead(PlaneId(1)), SinkRef::FuIn(FuId(0), InPort::B));
        // Result to plane 2; residual to cache 0 as a scalar.
        ins.switch.route(kb, SourceRef::Fu(FuId(0)), SinkRef::PlaneWrite(PlaneId(2)));
        ins.switch.route(kb, SourceRef::Fu(FuId(0)), SinkRef::FuIn(FuId(2), InPort::A));
        ins.switch.route(kb, SourceRef::Fu(FuId(2)), SinkRef::CacheWrite(CacheId(0)));
        *ins.plane_wr_mut(PlaneId(2)) = PlaneDmaField::contiguous(0, 512);
        *ins.cache_wr_mut(CacheId(0)) = CacheDmaField::scalar_capture(0);
        ins.seq = crate::seq::SequencerField {
            set_counter: None,
            cond: Some(CondBranch {
                cache: CacheId(0),
                offset: 0,
                cmp: CmpKind::Ge,
                threshold: 1e-6,
                target: 0,
            }),
            ctl: SeqCtl::Halt,
        };
        ins
    }

    #[test]
    fn empty_instruction_round_trips() {
        let kb = kb();
        let ins = MicroInstruction::empty(&kb);
        let bytes = ins.encode(&kb);
        assert_eq!(MicroInstruction::decode(&kb, &bytes).unwrap(), ins);
    }

    #[test]
    fn realistic_instruction_round_trips() {
        let kb = kb();
        let ins = sample(&kb);
        let bytes = ins.encode(&kb);
        let back = MicroInstruction::decode(&kb, &bytes).unwrap();
        assert_eq!(back, ins);
        assert_eq!(back.cache_wr[0].mode, WriteMode::LastOnly);
    }

    #[test]
    fn encoded_size_matches_census_exactly() {
        let kb = kb();
        let ins = sample(&kb);
        let bytes = ins.encode(&kb);
        let bits = MicroInstruction::encoded_bits(&kb);
        assert_eq!(bytes.len(), (bits as usize).div_ceil(8));
        // "a few thousand bits"
        assert!(bits > 2000 && bits < 10000, "{bits}");
    }

    #[test]
    fn enabled_fus_lists_active_units() {
        let kb = kb();
        let ins = sample(&kb);
        let active: Vec<_> = ins.enabled_fus().collect();
        assert_eq!(active, vec![FuId(0), FuId(2)]);
    }

    #[test]
    fn truncated_bytes_fail_cleanly() {
        let kb = kb();
        let ins = sample(&kb);
        let bytes = ins.encode(&kb);
        let err = MicroInstruction::decode(&kb, &bytes[..bytes.len() / 2]);
        assert!(err.is_err());
    }

    #[test]
    fn decode_under_a_different_machine_differs_or_fails() {
        let kb_full = kb();
        let kb_sub = KnowledgeBase::new(
            nsc_arch::MachineConfig::nsc_1988().subset(nsc_arch::SubsetModel::NoCaches),
        );
        let ins = sample(&kb_full);
        let bytes = ins.encode(&kb_full);
        // The subset machine's word is shorter; decoding either fails or
        // yields a different instruction — it must never silently equal.
        if let Ok(other) = MicroInstruction::decode(&kb_sub, &bytes) {
            assert_ne!(other, ins);
        }
    }
}
