//! The switch-network program: one source select per sink port.
//!
//! The FLONET crossbar is configured per instruction by giving every sink
//! port (each FU operand input, cache write, plane write and SDU input) the
//! code of the source driving it, or "unrouted". The microcode generator
//! "derive\[s\] switch settings by interrogating the connection tables built
//! by the graphical editor" (paper §5) — the result lands here.

use crate::bits::{BitReader, BitUnderflow, BitWriter};
use nsc_arch::{KnowledgeBase, SinkRef, SourceRef};
use serde::{Deserialize, Serialize};

/// Per-sink source selection, indexed by the knowledge base's sink codes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchTable {
    /// `routes[sink_code] = Some(source_code)` when the sink is driven.
    routes: Vec<Option<u16>>,
}

impl SwitchTable {
    /// An empty table sized for the machine.
    pub fn empty(kb: &KnowledgeBase) -> Self {
        SwitchTable { routes: vec![None; kb.sinks().len()] }
    }

    /// Number of sink entries.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether no sink is routed.
    pub fn is_empty(&self) -> bool {
        self.routes.iter().all(|r| r.is_none())
    }

    /// Route `source` to `sink`. Returns the previous driver, if any.
    ///
    /// # Panics
    /// If either port does not exist on this machine.
    pub fn route(&mut self, kb: &KnowledgeBase, source: SourceRef, sink: SinkRef) -> Option<u16> {
        let sc = kb.source_code(source).unwrap_or_else(|| panic!("unknown source {source}"));
        let kc = kb.sink_code(sink).unwrap_or_else(|| panic!("unknown sink {sink}"));
        self.routes[kc as usize].replace(sc)
    }

    /// Remove any route into `sink`.
    pub fn unroute(&mut self, kb: &KnowledgeBase, sink: SinkRef) -> Option<u16> {
        let kc = kb.sink_code(sink).expect("unknown sink");
        self.routes[kc as usize].take()
    }

    /// The source driving `sink`, if routed.
    pub fn driver(&self, kb: &KnowledgeBase, sink: SinkRef) -> Option<SourceRef> {
        let kc = kb.sink_code(sink)?;
        self.routes[kc as usize].and_then(|sc| kb.source_from_code(sc))
    }

    /// All (sink, source) pairs currently routed, in sink-code order.
    pub fn iter_routes<'a>(
        &'a self,
        kb: &'a KnowledgeBase,
    ) -> impl Iterator<Item = (SinkRef, SourceRef)> + 'a {
        self.routes.iter().enumerate().filter_map(move |(i, r)| {
            let src = (*r)?;
            Some((kb.sink_from_code(i as u16)?, kb.source_from_code(src)?))
        })
    }

    /// Number of sinks each source drives (for fan-out checks), indexed by
    /// source code.
    pub fn fanout_counts(&self, kb: &KnowledgeBase) -> Vec<usize> {
        let mut counts = vec![0usize; kb.sources().len()];
        for r in self.routes.iter().flatten() {
            counts[*r as usize] += 1;
        }
        counts
    }

    /// Encoded width for a machine: one source-select field per sink.
    pub fn bits(kb: &KnowledgeBase) -> u32 {
        kb.sinks().len() as u32 * kb.source_select_bits()
    }

    /// Pack into the writer: code 0 = unrouted, code `s+1` = source `s`.
    pub fn encode(&self, kb: &KnowledgeBase, w: &mut BitWriter) {
        let width = kb.source_select_bits();
        for r in &self.routes {
            w.write(r.map_or(0, |s| s as u64 + 1), width);
        }
    }

    /// Unpack from the reader.
    pub fn decode(kb: &KnowledgeBase, r: &mut BitReader) -> Result<Self, BitUnderflow> {
        let width = kb.source_select_bits();
        let mut routes = Vec::with_capacity(kb.sinks().len());
        for _ in 0..kb.sinks().len() {
            let raw = r.read(width)?;
            routes.push(if raw == 0 { None } else { Some((raw - 1) as u16) });
        }
        Ok(SwitchTable { routes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_arch::{CacheId, FuId, InPort, PlaneId};

    fn kb() -> KnowledgeBase {
        KnowledgeBase::nsc_1988()
    }

    #[test]
    fn route_and_query() {
        let kb = kb();
        let mut t = SwitchTable::empty(&kb);
        assert!(t.is_empty());
        let src = SourceRef::PlaneRead(PlaneId(0));
        let sink = SinkRef::FuIn(FuId(3), InPort::A);
        assert_eq!(t.route(&kb, src, sink), None);
        assert_eq!(t.driver(&kb, sink), Some(src));
        assert!(!t.is_empty());
        // Re-routing returns the old driver.
        let src2 = SourceRef::CacheRead(CacheId(1));
        assert!(t.route(&kb, src2, sink).is_some());
        assert_eq!(t.driver(&kb, sink), Some(src2));
        // Unrouting clears.
        assert!(t.unroute(&kb, sink).is_some());
        assert_eq!(t.driver(&kb, sink), None);
    }

    #[test]
    fn fanout_counts() {
        let kb = kb();
        let mut t = SwitchTable::empty(&kb);
        let src = SourceRef::Fu(FuId(0));
        t.route(&kb, src, SinkRef::FuIn(FuId(1), InPort::A));
        t.route(&kb, src, SinkRef::FuIn(FuId(2), InPort::B));
        t.route(&kb, src, SinkRef::PlaneWrite(PlaneId(5)));
        let counts = t.fanout_counts(&kb);
        assert_eq!(counts[kb.source_code(src).unwrap() as usize], 3);
        assert_eq!(counts.iter().sum::<usize>(), 3);
    }

    #[test]
    fn encode_decode_round_trips() {
        let kb = kb();
        let mut t = SwitchTable::empty(&kb);
        t.route(&kb, SourceRef::PlaneRead(PlaneId(7)), SinkRef::FuIn(FuId(0), InPort::A));
        t.route(&kb, SourceRef::Fu(FuId(0)), SinkRef::PlaneWrite(PlaneId(8)));
        t.route(&kb, SourceRef::Fu(FuId(31)), SinkRef::CacheWrite(CacheId(15)));
        let mut w = BitWriter::new();
        t.encode(&kb, &mut w);
        assert_eq!(w.len_bits() as u32, SwitchTable::bits(&kb));
        let bytes = w.finish();
        let back = SwitchTable::decode(&kb, &mut BitReader::new(&bytes)).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn table_width_for_the_1988_machine() {
        let kb = kb();
        // 98 sinks x 7 bits = 686 bits of switch program.
        assert_eq!(SwitchTable::bits(&kb), 98 * 7);
    }

    #[test]
    fn iter_routes_reports_all_pairs() {
        let kb = kb();
        let mut t = SwitchTable::empty(&kb);
        t.route(&kb, SourceRef::PlaneRead(PlaneId(1)), SinkRef::FuIn(FuId(4), InPort::B));
        t.route(&kb, SourceRef::Fu(FuId(4)), SinkRef::PlaneWrite(PlaneId(2)));
        let pairs: Vec<_> = t.iter_routes(&kb).collect();
        assert_eq!(pairs.len(), 2);
        assert!(
            pairs.contains(&(SinkRef::FuIn(FuId(4), InPort::B), SourceRef::PlaneRead(PlaneId(1))))
        );
        assert!(pairs.contains(&(SinkRef::PlaneWrite(PlaneId(2)), SourceRef::Fu(FuId(4)))));
    }

    #[test]
    #[should_panic(expected = "unknown source")]
    fn routing_a_nonexistent_source_panics() {
        let kb = KnowledgeBase::new(
            nsc_arch::MachineConfig::nsc_1988().subset(nsc_arch::SubsetModel::NoCaches),
        );
        let mut t = SwitchTable::empty(&kb);
        t.route(&kb, SourceRef::CacheRead(CacheId(0)), SinkRef::FuIn(FuId(0), InPort::A));
    }
}
