//! Shift/delay-unit control fields.
//!
//! Paper §2: "Two shift/delay units are provided to aid in reformatting
//! memory data into multiple vector streams." An SDU takes the one stream
//! the switch routes to it and re-emits it on up to four taps, each delayed
//! by a programmable element count. Fourteen-bit delays cover the pinned
//! 16 Ki-word internal buffer, enough to reach `2*nx*ny` for 64 x 64 grid
//! planes — the delay needed to turn one array stream into all six
//! neighbour streams of a 3-D stencil.

use crate::bits::{BitReader, BitUnderflow, BitWriter};
use serde::{Deserialize, Serialize};

/// One output tap of a shift/delay unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SduTapField {
    /// Whether this tap emits a stream.
    pub enabled: bool,
    /// Delay in elements relative to the input stream.
    pub delay: u16,
}

impl SduTapField {
    const DELAY_BITS: u32 = 14;
    /// Encoded width of one tap.
    pub const BITS: u32 = 1 + Self::DELAY_BITS;
    /// Leaf fields (enable, delay).
    pub const LEAF_FIELDS: usize = 2;

    /// A silent tap.
    pub fn off() -> Self {
        SduTapField { enabled: false, delay: 0 }
    }

    /// A live tap with the given element delay.
    pub fn delayed(delay: u16) -> Self {
        SduTapField { enabled: true, delay }
    }

    /// Pack into the writer.
    pub fn encode(&self, w: &mut BitWriter) {
        w.write_bool(self.enabled);
        w.write(self.delay as u64, Self::DELAY_BITS);
    }

    /// Unpack from the reader.
    pub fn decode(r: &mut BitReader) -> Result<Self, BitUnderflow> {
        Ok(SduTapField { enabled: r.read_bool()?, delay: r.read(Self::DELAY_BITS)? as u16 })
    }
}

impl Default for SduTapField {
    fn default() -> Self {
        Self::off()
    }
}

/// Complete control for one shift/delay unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SduField {
    /// Whether the unit consumes its routed input this instruction.
    pub enabled: bool,
    /// The four output taps.
    pub taps: [SduTapField; 4],
}

impl SduField {
    /// Encoded width of one SDU field.
    pub const BITS: u32 = 1 + 4 * SduTapField::BITS;
    /// Leaf fields (enable + 4 taps x 2).
    pub const LEAF_FIELDS: usize = 1 + 4 * SduTapField::LEAF_FIELDS;

    /// An idle unit.
    pub fn idle() -> Self {
        Self::default()
    }

    /// A unit emitting the given delays on consecutive taps.
    pub fn with_delays(delays: &[u16]) -> Self {
        assert!(delays.len() <= 4, "an SDU has four taps");
        let mut taps = [SduTapField::off(); 4];
        for (t, &d) in taps.iter_mut().zip(delays) {
            *t = SduTapField::delayed(d);
        }
        SduField { enabled: !delays.is_empty(), taps }
    }

    /// The largest enabled delay (the unit's working set in its buffer).
    pub fn max_delay(&self) -> u16 {
        self.taps.iter().filter(|t| t.enabled).map(|t| t.delay).max().unwrap_or(0)
    }

    /// Pack into the writer.
    pub fn encode(&self, w: &mut BitWriter) {
        w.write_bool(self.enabled);
        for t in &self.taps {
            t.encode(w);
        }
    }

    /// Unpack from the reader.
    pub fn decode(r: &mut BitReader) -> Result<Self, BitUnderflow> {
        let enabled = r.read_bool()?;
        let mut taps = [SduTapField::off(); 4];
        for t in &mut taps {
            *t = SduTapField::decode(r)?;
        }
        Ok(SduField { enabled, taps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn with_delays_enables_consecutive_taps() {
        let s = SduField::with_delays(&[0, 63, 4095]);
        assert!(s.enabled);
        assert!(s.taps[0].enabled && s.taps[0].delay == 0);
        assert!(s.taps[1].enabled && s.taps[1].delay == 63);
        assert!(s.taps[2].enabled && s.taps[2].delay == 4095);
        assert!(!s.taps[3].enabled);
        assert_eq!(s.max_delay(), 4095);
    }

    #[test]
    fn empty_delays_keep_unit_idle() {
        let s = SduField::with_delays(&[]);
        assert!(!s.enabled);
        assert_eq!(s.max_delay(), 0);
    }

    #[test]
    #[should_panic(expected = "four taps")]
    fn too_many_delays_panics() {
        SduField::with_delays(&[1, 2, 3, 4, 5]);
    }

    #[test]
    fn stencil_delays_fit_the_field() {
        // 2*nx*ny for the largest supported plane (64x64) must encode.
        let d = 2 * 64 * 64u16;
        let s = SduField::with_delays(&[d]);
        let mut w = BitWriter::new();
        s.encode(&mut w);
        let bytes = w.finish();
        assert_eq!(SduField::decode(&mut BitReader::new(&bytes)).unwrap(), s);
    }

    proptest! {
        #[test]
        fn prop_sdu_round_trips(
            enabled in any::<bool>(),
            t0 in (any::<bool>(), 0u16..(1<<14)),
            t1 in (any::<bool>(), 0u16..(1<<14)),
            t2 in (any::<bool>(), 0u16..(1<<14)),
            t3 in (any::<bool>(), 0u16..(1<<14)),
        ) {
            let mk = |(e, d): (bool, u16)| SduTapField { enabled: e, delay: d };
            let s = SduField { enabled, taps: [mk(t0), mk(t1), mk(t2), mk(t3)] };
            let mut w = BitWriter::new();
            s.encode(&mut w);
            prop_assert_eq!(w.len_bits(), SduField::BITS as usize);
            let bytes = w.finish();
            prop_assert_eq!(SduField::decode(&mut BitReader::new(&bytes)).unwrap(), s);
        }
    }
}
