//! Field and bit census of the instruction word (experiment T2).
//!
//! The paper's §3 claim under test: one instruction "requires a few
//! thousand bits of information per instruction, encoded in dozens of
//! separate fields." [`Census::of_machine`] computes the exact encoded
//! width and counts fields at two granularities: *groups* (one per
//! architectural control section — a FU field, a DMA descriptor, the switch
//! table, the sequencer) and *leaf fields* (every individually-set value).

use crate::dma::{CacheDmaField, PlaneDmaField};
use crate::fu_field::FuField;
use crate::sdu_field::SduField;
use crate::seq::SequencerField;
use crate::switch_table::SwitchTable;
use nsc_arch::KnowledgeBase;
use serde::{Deserialize, Serialize};

/// One architectural section of the instruction word.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldGroup {
    /// Section name (e.g. "functional units").
    pub name: String,
    /// How many instances of the section the word contains.
    pub instances: usize,
    /// Encoded bits per instance.
    pub bits_each: u32,
    /// Leaf fields per instance.
    pub leaf_fields_each: usize,
}

impl FieldGroup {
    /// Total bits contributed by this group.
    pub fn total_bits(&self) -> u32 {
        self.instances as u32 * self.bits_each
    }

    /// Total leaf fields contributed by this group.
    pub fn total_leaves(&self) -> usize {
        self.instances * self.leaf_fields_each
    }
}

/// The complete census of one machine's instruction word.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Census {
    /// Per-section breakdown.
    pub groups: Vec<FieldGroup>,
}

impl Census {
    /// Compute the census for a machine.
    pub fn of_machine(kb: &KnowledgeBase) -> Self {
        let cfg = kb.config();
        let groups = vec![
            FieldGroup {
                name: "functional units".into(),
                instances: cfg.fu_count(),
                bits_each: FuField::BITS,
                leaf_fields_each: FuField::LEAF_FIELDS,
            },
            FieldGroup {
                name: "switch network (per-sink source selects)".into(),
                instances: 1,
                bits_each: SwitchTable::bits(kb),
                leaf_fields_each: kb.sinks().len(),
            },
            FieldGroup {
                name: "memory-plane DMA (read+write per plane)".into(),
                instances: cfg.memory.planes * 2,
                bits_each: PlaneDmaField::BITS,
                leaf_fields_each: PlaneDmaField::LEAF_FIELDS,
            },
            FieldGroup {
                name: "cache DMA (read+write per cache)".into(),
                instances: cfg.cache.caches * 2,
                bits_each: CacheDmaField::BITS,
                leaf_fields_each: CacheDmaField::LEAF_FIELDS,
            },
            FieldGroup {
                name: "shift/delay units".into(),
                instances: cfg.sdu.units,
                bits_each: SduField::BITS,
                leaf_fields_each: SduField::LEAF_FIELDS,
            },
            FieldGroup {
                name: "sequencer".into(),
                instances: 1,
                bits_each: SequencerField::BITS,
                leaf_fields_each: SequencerField::LEAF_FIELDS,
            },
        ];
        Census { groups }
    }

    /// Total encoded bits of one instruction.
    pub fn total_bits(&self) -> u32 {
        self.groups.iter().map(FieldGroup::total_bits).sum()
    }

    /// Total architectural field groups ("dozens of separate fields").
    pub fn total_groups(&self) -> usize {
        self.groups.iter().map(|g| g.instances).sum()
    }

    /// Total leaf fields (every individually-encoded value).
    pub fn total_leaves(&self) -> usize {
        self.groups.iter().map(FieldGroup::total_leaves).sum()
    }

    /// Render the census as the table reported in EXPERIMENTS.md.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str("section                                      count  bits/each  bits total\n");
        for g in &self.groups {
            out.push_str(&format!(
                "{:<44} {:>5} {:>10} {:>11}\n",
                g.name,
                g.instances,
                g.bits_each,
                g.total_bits()
            ));
        }
        out.push_str(&format!(
            "TOTAL: {} bits ({} bytes) in {} field groups / {} leaf fields\n",
            self.total_bits(),
            self.total_bits().div_ceil(8),
            self.total_groups(),
            self.total_leaves()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_1988_word_is_a_few_thousand_bits() {
        let kb = KnowledgeBase::nsc_1988();
        let census = Census::of_machine(&kb);
        let bits = census.total_bits();
        // "a few thousand bits of information per instruction"
        assert!((2000..10000).contains(&bits), "{bits} bits is not 'a few thousand'");
    }

    #[test]
    fn the_1988_word_has_dozens_of_field_groups() {
        let kb = KnowledgeBase::nsc_1988();
        let census = Census::of_machine(&kb);
        // "encoded in dozens of separate fields": 32 FU + 32 plane DMA +
        // 32 cache DMA + 2 SDU + switch + sequencer = 100 sections.
        let groups = census.total_groups();
        assert!((24..=200).contains(&groups), "{groups} groups");
        assert!(census.total_leaves() > groups);
    }

    #[test]
    fn totals_are_sums_of_groups() {
        let kb = KnowledgeBase::nsc_1988();
        let census = Census::of_machine(&kb);
        let manual: u32 = census.groups.iter().map(|g| g.instances as u32 * g.bits_each).sum();
        assert_eq!(census.total_bits(), manual);
    }

    #[test]
    fn subset_machines_shrink_the_word() {
        let full = Census::of_machine(&KnowledgeBase::nsc_1988());
        let nocache = Census::of_machine(&KnowledgeBase::new(
            nsc_arch::MachineConfig::nsc_1988().subset(nsc_arch::SubsetModel::NoCaches),
        ));
        assert!(nocache.total_bits() < full.total_bits());
    }

    #[test]
    fn render_mentions_every_group() {
        let census = Census::of_machine(&KnowledgeBase::nsc_1988());
        let table = census.render_table();
        for g in &census.groups {
            assert!(table.contains(&g.name), "missing {}", g.name);
        }
        assert!(table.contains("TOTAL"));
    }
}
