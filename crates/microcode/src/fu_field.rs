//! Per-functional-unit control fields.
//!
//! Each of the node's 32 functional units gets one [`FuField`] in every
//! microinstruction: whether it participates, which operation it performs,
//! where each of its two operand inputs comes from, and an optional
//! register-file constant preload (paper §2: register files "store
//! constants or intermediate values, as well as ... buffer data to adjust
//! for pipeline timing delays").

use crate::bits::{BitReader, BitUnderflow, BitWriter};
use nsc_arch::FuOp;
use serde::{Deserialize, Serialize};

/// Where one operand input of a functional unit comes from.
///
/// Paper §5 (Figure 8 menu): "These may be either external connections to
/// other function units, caches, memories, or shift/delay units, or else
/// internal connections for feedback loops or register file data."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FuInputSel {
    /// External: take the stream the switch routes to this input port.
    Switch,
    /// Internal: a register-file constant (slot index into the RF).
    Constant(u8),
    /// Internal: this unit's own switch-routed stream, passed through the
    /// register file configured as a circular queue of the given depth —
    /// the paper's mechanism for vector-stream timing alignment ("routing
    /// input data into a circular queue in a register file and then
    /// retrieving the value a number of clock cycles later").
    Queue(u8),
    /// Internal: feedback of this unit's own output (running reductions);
    /// the slot index names the RF register holding the initial value.
    Feedback(u8),
}

impl FuInputSel {
    const TAG_BITS: u32 = 2;
    const OPERAND_BITS: u32 = 6;
    /// Encoded width of one input selector.
    pub const BITS: u32 = Self::TAG_BITS + Self::OPERAND_BITS;

    fn tag(&self) -> u64 {
        match self {
            FuInputSel::Switch => 0,
            FuInputSel::Constant(_) => 1,
            FuInputSel::Queue(_) => 2,
            FuInputSel::Feedback(_) => 3,
        }
    }

    fn operand(&self) -> u64 {
        match self {
            FuInputSel::Switch => 0,
            FuInputSel::Constant(s) | FuInputSel::Queue(s) | FuInputSel::Feedback(s) => *s as u64,
        }
    }

    /// Pack into the writer.
    pub fn encode(&self, w: &mut BitWriter) {
        w.write(self.tag(), Self::TAG_BITS);
        w.write(self.operand(), Self::OPERAND_BITS);
    }

    /// Unpack from the reader.
    pub fn decode(r: &mut BitReader) -> Result<Self, BitUnderflow> {
        let tag = r.read(Self::TAG_BITS)?;
        let operand = r.read(Self::OPERAND_BITS)? as u8;
        Ok(match tag {
            0 => FuInputSel::Switch,
            1 => FuInputSel::Constant(operand),
            2 => FuInputSel::Queue(operand),
            _ => FuInputSel::Feedback(operand),
        })
    }
}

/// Complete microcode control for one functional unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FuField {
    /// Whether this unit participates in the instruction.
    pub enabled: bool,
    /// The operation it performs (6-bit opcode).
    pub op: FuOp,
    /// First operand source.
    pub in_a: FuInputSel,
    /// Second operand source.
    pub in_b: FuInputSel,
    /// Register-file slot read by [`FuOp::MulAddConst`] and used as the
    /// initial value of [`FuInputSel::Feedback`].
    pub const_slot: u8,
    /// Constant preloaded into `const_slot` at instruction start, if any.
    pub preload: Option<f64>,
}

impl FuField {
    const OP_BITS: u32 = 6;
    const SLOT_BITS: u32 = 6;
    /// Encoded width of one FU field.
    pub const BITS: u32 = 1 + Self::OP_BITS + 2 * FuInputSel::BITS + Self::SLOT_BITS + 1 + 64;
    /// Leaf control fields per FU (enable, op, 2 x (tag, operand), slot,
    /// preload-enable, preload-value).
    pub const LEAF_FIELDS: usize = 9;

    /// A disabled unit (the all-defaults field).
    pub fn disabled() -> Self {
        FuField {
            enabled: false,
            op: FuOp::Copy,
            in_a: FuInputSel::Switch,
            in_b: FuInputSel::Switch,
            const_slot: 0,
            preload: None,
        }
    }

    /// An enabled unit computing `op` from two switch-routed streams.
    pub fn active(op: FuOp) -> Self {
        FuField { enabled: true, op, ..Self::disabled() }
    }

    /// Pack into the writer.
    pub fn encode(&self, w: &mut BitWriter) {
        w.write_bool(self.enabled);
        w.write(self.op.code() as u64, Self::OP_BITS);
        self.in_a.encode(w);
        self.in_b.encode(w);
        w.write(self.const_slot as u64, Self::SLOT_BITS);
        match self.preload {
            Some(v) => {
                w.write_bool(true);
                w.write_f64(v);
            }
            None => {
                w.write_bool(false);
                w.write_f64(0.0);
            }
        }
    }

    /// Unpack from the reader.
    pub fn decode(r: &mut BitReader) -> Result<Self, BitUnderflow> {
        let enabled = r.read_bool()?;
        let op = FuOp::from_code(r.read(Self::OP_BITS)? as u8).unwrap_or(FuOp::Copy);
        let in_a = FuInputSel::decode(r)?;
        let in_b = FuInputSel::decode(r)?;
        let const_slot = r.read(Self::SLOT_BITS)? as u8;
        let has_preload = r.read_bool()?;
        let val = r.read_f64()?;
        let preload = if has_preload { Some(val) } else { None };
        Ok(FuField { enabled, op, in_a, in_b, const_slot, preload })
    }
}

impl Default for FuField {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(f: &FuField) -> FuField {
        let mut w = BitWriter::new();
        f.encode(&mut w);
        assert_eq!(w.len_bits(), FuField::BITS as usize);
        let bytes = w.finish();
        FuField::decode(&mut BitReader::new(&bytes)).unwrap()
    }

    #[test]
    fn disabled_field_round_trips() {
        let f = FuField::disabled();
        assert_eq!(round_trip(&f), f);
    }

    #[test]
    fn active_field_round_trips() {
        let f = FuField {
            enabled: true,
            op: FuOp::MulAddConst,
            in_a: FuInputSel::Queue(17),
            in_b: FuInputSel::Constant(5),
            const_slot: 63,
            preload: Some(1.0 / 6.0),
        };
        assert_eq!(round_trip(&f), f);
    }

    #[test]
    fn feedback_selector_round_trips() {
        let f = FuField {
            enabled: true,
            op: FuOp::Max,
            in_a: FuInputSel::Switch,
            in_b: FuInputSel::Feedback(3),
            const_slot: 3,
            preload: Some(0.0),
        };
        let back = round_trip(&f);
        assert_eq!(back.in_b, FuInputSel::Feedback(3));
        assert_eq!(back, f);
    }

    #[test]
    fn width_constant_matches_layout() {
        // 1 + 6 + 8 + 8 + 6 + 1 + 64 = 94 bits per FU.
        assert_eq!(FuField::BITS, 94);
    }

    fn arb_sel() -> impl Strategy<Value = FuInputSel> {
        prop_oneof![
            Just(FuInputSel::Switch),
            (0u8..64).prop_map(FuInputSel::Constant),
            (0u8..64).prop_map(FuInputSel::Queue),
            (0u8..64).prop_map(FuInputSel::Feedback),
        ]
    }

    proptest! {
        #[test]
        fn prop_fu_field_round_trips(
            enabled in any::<bool>(),
            op_idx in 0usize..FuOp::ALL.len(),
            in_a in arb_sel(),
            in_b in arb_sel(),
            const_slot in 0u8..64,
            preload in prop::option::of(-1.0e10f64..1.0e10),
        ) {
            let f = FuField { enabled, op: FuOp::ALL[op_idx], in_a, in_b, const_slot, preload };
            prop_assert_eq!(round_trip(&f), f);
        }
    }
}
