//! DMA controller descriptors for memory planes and data caches.
//!
//! Paper §2: "independent DMA controllers associated with each memory and
//! cache plane pump data through the pipelines." A plane or cache whose
//! switch port is routed needs a descriptor telling its controller where to
//! start, how to stride, and how many words to move; paper Figure 9 shows
//! the pop-up sub-window in which the user supplies exactly these values
//! ("the cache or memory plane number, variable name or starting address,
//! stride, etc.").

use crate::bits::{BitReader, BitUnderflow, BitWriter};
use serde::{Deserialize, Serialize};

/// How a write-side DMA consumes its input stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum WriteMode {
    /// Store every element of the stream (vector result).
    #[default]
    Stream,
    /// Consume the whole stream but store only its final element — used to
    /// capture the result of a feedback reduction (e.g. a residual norm)
    /// as a scalar.
    LastOnly,
}

impl WriteMode {
    fn bit(self) -> u64 {
        match self {
            WriteMode::Stream => 0,
            WriteMode::LastOnly => 1,
        }
    }

    fn from_bit(b: u64) -> Self {
        if b == 0 {
            WriteMode::Stream
        } else {
            WriteMode::LastOnly
        }
    }
}

/// One direction (read or write) of a memory plane's DMA controller.
///
/// Addresses are plane-local word addresses (24 bits cover the 16 Mi words
/// of a 128 MB plane); strides are signed so streams can run backwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlaneDmaField {
    /// Whether this direction runs during the instruction.
    pub enabled: bool,
    /// Starting word address within the plane.
    pub base: u32,
    /// Element stride in words (signed).
    pub stride: i32,
    /// Number of words to transfer.
    pub count: u32,
    /// Write side: discard this many leading elements of the incoming
    /// stream before storing (shift/delay warm-up produced by stencil tap
    /// offsets; the generator computes it automatically). Ignored on reads.
    pub skip: u32,
    /// Write-side consumption mode (ignored for reads).
    pub mode: WriteMode,
}

impl PlaneDmaField {
    const ADDR_BITS: u32 = 24;
    const STRIDE_BITS: u32 = 16;
    const COUNT_BITS: u32 = 24;
    const SKIP_BITS: u32 = 24;
    /// Encoded width of one plane DMA direction.
    pub const BITS: u32 =
        1 + Self::ADDR_BITS + Self::STRIDE_BITS + Self::COUNT_BITS + Self::SKIP_BITS + 1;
    /// Leaf fields (enable, base, stride, count, skip, mode).
    pub const LEAF_FIELDS: usize = 6;

    /// An idle controller.
    pub fn idle() -> Self {
        PlaneDmaField {
            enabled: false,
            base: 0,
            stride: 1,
            count: 0,
            skip: 0,
            mode: WriteMode::Stream,
        }
    }

    /// A unit-stride transfer of `count` words starting at `base`.
    pub fn contiguous(base: u32, count: u32) -> Self {
        PlaneDmaField { enabled: true, base, stride: 1, count, skip: 0, mode: WriteMode::Stream }
    }

    /// Pack into the writer.
    pub fn encode(&self, w: &mut BitWriter) {
        w.write_bool(self.enabled);
        w.write(self.base as u64, Self::ADDR_BITS);
        w.write_signed(self.stride as i64, Self::STRIDE_BITS);
        w.write(self.count as u64, Self::COUNT_BITS);
        w.write(self.skip as u64, Self::SKIP_BITS);
        w.write(self.mode.bit(), 1);
    }

    /// Unpack from the reader.
    pub fn decode(r: &mut BitReader) -> Result<Self, BitUnderflow> {
        Ok(PlaneDmaField {
            enabled: r.read_bool()?,
            base: r.read(Self::ADDR_BITS)? as u32,
            stride: r.read_signed(Self::STRIDE_BITS)? as i32,
            count: r.read(Self::COUNT_BITS)? as u32,
            skip: r.read(Self::SKIP_BITS)? as u32,
            mode: WriteMode::from_bit(r.read(1)?),
        })
    }
}

impl Default for PlaneDmaField {
    fn default() -> Self {
        Self::idle()
    }
}

/// One direction (read or write) of a cache's DMA controller.
///
/// Offsets address one 8 K-word buffer (13 bits); the `buffer` bit selects
/// which half of the double buffer the pipelines face this instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheDmaField {
    /// Whether this direction runs during the instruction.
    pub enabled: bool,
    /// Starting word offset within the selected buffer.
    pub offset: u16,
    /// Element stride in words (signed).
    pub stride: i16,
    /// Number of words to transfer.
    pub count: u16,
    /// Write side: discard this many leading stream elements before
    /// storing. Ignored on reads.
    pub skip: u16,
    /// Which buffer of the double buffer this direction uses.
    pub buffer: u8,
    /// Write-side consumption mode (ignored for reads).
    pub mode: WriteMode,
}

impl CacheDmaField {
    const OFFSET_BITS: u32 = 13;
    const STRIDE_BITS: u32 = 8;
    const COUNT_BITS: u32 = 14;
    const SKIP_BITS: u32 = 14;
    /// Encoded width of one cache DMA direction.
    pub const BITS: u32 =
        1 + Self::OFFSET_BITS + Self::STRIDE_BITS + Self::COUNT_BITS + Self::SKIP_BITS + 1 + 1;
    /// Leaf fields (enable, offset, stride, count, skip, buffer, mode).
    pub const LEAF_FIELDS: usize = 7;

    /// An idle controller.
    pub fn idle() -> Self {
        CacheDmaField {
            enabled: false,
            offset: 0,
            stride: 1,
            count: 0,
            skip: 0,
            buffer: 0,
            mode: WriteMode::Stream,
        }
    }

    /// A scalar capture: consume a stream, store its last element at
    /// `offset` (used for reduction results such as residual norms).
    pub fn scalar_capture(offset: u16) -> Self {
        CacheDmaField {
            enabled: true,
            offset,
            stride: 1,
            count: 1,
            skip: 0,
            buffer: 0,
            mode: WriteMode::LastOnly,
        }
    }

    /// Pack into the writer.
    pub fn encode(&self, w: &mut BitWriter) {
        w.write_bool(self.enabled);
        w.write(self.offset as u64, Self::OFFSET_BITS);
        w.write_signed(self.stride as i64, Self::STRIDE_BITS);
        w.write(self.count as u64, Self::COUNT_BITS);
        w.write(self.skip as u64, Self::SKIP_BITS);
        w.write(self.buffer as u64, 1);
        w.write(self.mode.bit(), 1);
    }

    /// Unpack from the reader.
    pub fn decode(r: &mut BitReader) -> Result<Self, BitUnderflow> {
        Ok(CacheDmaField {
            enabled: r.read_bool()?,
            offset: r.read(Self::OFFSET_BITS)? as u16,
            stride: r.read_signed(Self::STRIDE_BITS)? as i16,
            count: r.read(Self::COUNT_BITS)? as u16,
            skip: r.read(Self::SKIP_BITS)? as u16,
            buffer: r.read(1)? as u8,
            mode: WriteMode::from_bit(r.read(1)?),
        })
    }
}

impl Default for CacheDmaField {
    fn default() -> Self {
        Self::idle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn plane_dma_round_trips() {
        let d = PlaneDmaField {
            enabled: true,
            base: 0x00FF_FFFF,
            stride: -4096,
            count: 1 << 20,
            skip: 8192,
            mode: WriteMode::LastOnly,
        };
        let mut w = BitWriter::new();
        d.encode(&mut w);
        assert_eq!(w.len_bits(), PlaneDmaField::BITS as usize);
        let bytes = w.finish();
        assert_eq!(PlaneDmaField::decode(&mut BitReader::new(&bytes)).unwrap(), d);
    }

    #[test]
    fn cache_dma_round_trips() {
        let d = CacheDmaField {
            enabled: true,
            offset: 8191,
            stride: -128,
            count: 16383,
            skip: 100,
            buffer: 1,
            mode: WriteMode::Stream,
        };
        let mut w = BitWriter::new();
        d.encode(&mut w);
        assert_eq!(w.len_bits(), CacheDmaField::BITS as usize);
        let bytes = w.finish();
        assert_eq!(CacheDmaField::decode(&mut BitReader::new(&bytes)).unwrap(), d);
    }

    #[test]
    fn plane_addresses_cover_a_full_plane() {
        // 24-bit word addresses reach 16 Mi words = 128 MB: exactly the
        // paper's plane size, with no wasted address bits.
        assert_eq!(1u64 << 24, 16 * 1024 * 1024);
    }

    #[test]
    fn constructors() {
        let c = PlaneDmaField::contiguous(100, 50);
        assert!(c.enabled && c.stride == 1 && c.count == 50 && c.base == 100);
        let s = CacheDmaField::scalar_capture(7);
        assert!(s.enabled && s.count == 1 && s.mode == WriteMode::LastOnly && s.offset == 7);
        assert!(!PlaneDmaField::idle().enabled);
        assert!(!CacheDmaField::idle().enabled);
    }

    proptest! {
        #[test]
        fn prop_plane_dma_round_trips(
            enabled in any::<bool>(),
            base in 0u32..(1 << 24),
            stride in -32768i32..32768,
            count in 0u32..(1 << 24),
            last in any::<bool>(),
        ) {
            let d = PlaneDmaField {
                enabled, base, stride, count, skip: count / 2,
                mode: if last { WriteMode::LastOnly } else { WriteMode::Stream },
            };
            let mut w = BitWriter::new();
            d.encode(&mut w);
            let bytes = w.finish();
            prop_assert_eq!(PlaneDmaField::decode(&mut BitReader::new(&bytes)).unwrap(), d);
        }

        #[test]
        fn prop_cache_dma_round_trips(
            enabled in any::<bool>(),
            offset in 0u16..(1 << 13),
            stride in -128i16..128,
            count in 0u16..(1 << 14),
            buffer in 0u8..2,
            last in any::<bool>(),
        ) {
            let d = CacheDmaField {
                enabled, offset, stride, count, skip: count / 2, buffer,
                mode: if last { WriteMode::LastOnly } else { WriteMode::Stream },
            };
            let mut w = BitWriter::new();
            d.encode(&mut w);
            let bytes = w.finish();
            prop_assert_eq!(CacheDmaField::decode(&mut BitReader::new(&bytes)).unwrap(), d);
        }
    }
}
