//! Tamper-detection property tests for the certificate verifier: every
//! mutation of a sealed certificate must be rejected. Mutations left
//! unsealed trip the seal check (V001); mutations that cover their
//! tracks by resealing trip the specific obligation they forged.

use nsc_cert::{
    digest_hex, verify, CacheSpan, CompileCertificate, CompilePath, ConstraintKind, CoverageCert,
    Expected, InstrCensus, KernelWindow, LeaseCert, MachineLimits, PlaneSpan, ResourceCensus,
    RouteCert, SduUse, WindowSpan,
};
use proptest::prelude::*;

fn machine() -> MachineLimits {
    MachineLimits {
        fu_count: 32,
        planes: 16,
        words_per_plane: 1 << 24,
        caches: 16,
        cache_buffers: 2,
        cache_words_per_buffer: 8192,
        sdu_units: 2,
        sdu_taps_per_unit: 4,
        sdu_buffer_words: 16384,
        max_sdu_taps: 8,
        rf_words: 64,
        clock_hz: 20_000_000,
    }
}

/// An honest certificate exercising every obligation family: census rows
/// with SDU/plane/cache usage, a kernel window, a multi-hop route under
/// a lease, and a three-window coverage proof.
fn honest() -> CompileCertificate {
    CompileCertificate {
        doc_digest: digest_hex(0xabc),
        shape_digest: digest_hex(0xdef),
        compile_path: CompilePath::Full,
        machine: machine(),
        census: ResourceCensus {
            instructions: vec![InstrCensus {
                index: 0,
                active_fus: 3,
                sdu: vec![SduUse { unit: 0, taps: 2, max_delay: 9 }],
                planes: vec![PlaneSpan { plane: 0, lo: 0, hi: 511, words: 512, write: false }],
                caches: vec![CacheSpan {
                    cache: 0,
                    buffer: 0,
                    lo: 0,
                    hi: 0,
                    words: 1,
                    write: true,
                }],
            }],
            active_fus: 3,
            sdu_taps: 2,
            plane_words: 512,
            cache_words: 1,
        },
        windows: vec![KernelWindow {
            index: 0,
            executed_cycles: 512,
            flops: 1024,
            streamed: 512,
            stored: 512,
        }],
        routes: vec![RouteCert { from: 0, to: 3, words: 64, path: vec![0, 1, 3] }],
        coverage: vec![CoverageCert {
            part: 0,
            node: 0,
            owned_start: 1,
            owned_len: 4,
            windows: vec![
                WindowSpan { start: 1, len: 1, slot: 1 },
                WindowSpan { start: 2, len: 2, slot: 0 },
                WindowSpan { start: 4, len: 1, slot: 2 },
            ],
        }],
        lease: Some(LeaseCert { base: 8, dimension: 2 }),
        seal: String::new(),
    }
    .sealed()
}

/// Apply the `which`-th forgery to the certificate, using `amount` for
/// magnitude variety, and return the obligation a *resealed* copy must
/// trip. Each forgery is crafted to keep every earlier obligation
/// intact, so the verifier's first rejection is the forged one.
fn forge(cert: &mut CompileCertificate, which: usize, amount: u64) -> ConstraintKind {
    let a = amount.max(1);
    match which {
        // Malformed doc digest (decimal string, never 32 hex digits).
        0 => {
            cert.doc_digest = format!("{a}");
            ConstraintKind::DocDigestBinding
        }
        // Malformed shape digest.
        1 => {
            cert.shape_digest = format!("not-a-digest-{a}");
            ConstraintKind::ShapeDigestBinding
        }
        // Census rows out of order: a duplicate index-0 row (empty, so
        // the redundant totals stay consistent).
        2 => {
            cert.census.instructions.push(InstrCensus {
                index: 0,
                active_fus: 0,
                sdu: vec![],
                planes: vec![],
                caches: vec![],
            });
            ConstraintKind::CertWellFormed
        }
        // A kernel window for an instruction that has no census row.
        3 => {
            cert.windows[0].index = 7 + (a % 100) as u32;
            ConstraintKind::CertWellFormed
        }
        // Inflated redundant total (per-row sums untouched).
        4 => {
            cert.census.active_fus += a;
            ConstraintKind::CensusTotals
        }
        // FU overcommit: more active units than the machine has, with
        // the total updated to match so V005 stays green.
        5 => {
            let fus = cert.machine.fu_count + 1 + (a % 100) as u32;
            cert.census.instructions[0].active_fus = fus;
            cert.census.active_fus = fus as u64;
            ConstraintKind::FuCensusBound
        }
        // SDU tap overcommit, total kept consistent.
        6 => {
            let taps = cert.machine.max_sdu_taps + 1 + (a % 100) as u32;
            cert.census.instructions[0].sdu[0].taps = taps;
            cert.census.sdu_taps = taps as u64;
            ConstraintKind::SduTapBound
        }
        // SDU delay overruns the unit's buffer.
        7 => {
            cert.census.instructions[0].sdu[0].max_delay = cert.machine.sdu_buffer_words + a - 1;
            ConstraintKind::SduDelayBound
        }
        // Plane DMA span escapes the plane (words still fit the span).
        8 => {
            cert.census.instructions[0].planes[0].hi = cert.machine.words_per_plane + a - 1;
            ConstraintKind::PlaneDmaBound
        }
        // Cache DMA span escapes the buffer.
        9 => {
            cert.census.instructions[0].caches[0].hi = cert.machine.cache_words_per_buffer + a - 1;
            ConstraintKind::CacheDmaBound
        }
        // Flop overcommit: more work than active_fus x cycles.
        10 => {
            let w = &mut cert.windows[0];
            w.flops = cert.census.instructions[0].active_fus as u64 * w.executed_cycles + a;
            ConstraintKind::FlopWindowBound
        }
        // Route whose path no longer joins its claimed endpoints.
        11 => {
            cert.routes[0].from ^= 1;
            ConstraintKind::RouteEndpoints
        }
        // Detour: more hops than the Hamming distance.
        12 => {
            cert.routes[0].path = vec![0, 1, 0, 1, 3];
            ConstraintKind::RouteMinimal
        }
        // Wrong e-cube order: dimension 1 corrected before dimension 0.
        13 => {
            cert.routes[0].path = vec![0, 2, 3];
            ConstraintKind::RouteEcubeOrder
        }
        // Shrunk lease: node 3 escapes a 2-node sub-cube.
        14 => {
            cert.lease = Some(LeaseCert { base: 8, dimension: 1 });
            ConstraintKind::RouteContainment
        }
        // Coverage gap: the middle window shrinks, leaving layer 3 bare.
        15 => {
            cert.coverage[0].windows[1].len = 1;
            ConstraintKind::CoverageTiling
        }
        // Coverage overlap: the middle window grows over layer 4.
        _ => {
            cert.coverage[0].windows[1].len = 3;
            ConstraintKind::CoverageTiling
        }
    }
}

/// Number of distinct forgeries `forge` implements.
const FORGERIES: usize = 17;

#[test]
fn honest_certificate_is_accepted() {
    let report = verify(&honest(), &Expected::default()).expect("honest certificate verifies");
    assert!(report.obligations > 20);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    // Any forgery left unsealed is caught by the seal alone: the
    // verifier never even reaches the forged obligation.
    #[test]
    fn prop_unsealed_mutation_trips_the_seal(
        which in 0usize..FORGERIES,
        amount in 1u64..1_000_000,
    ) {
        let mut cert = honest();
        forge(&mut cert, which, amount);
        let v = verify(&cert, &Expected::default()).unwrap_err();
        prop_assert_eq!(v.kind, ConstraintKind::SealIntegrity, "forgery {} unsealed", which);
    }

    // A forger who covers their tracks by resealing still loses: the
    // resealed certificate fails exactly the obligation it forged.
    #[test]
    fn prop_resealed_mutation_trips_its_obligation(
        which in 0usize..FORGERIES,
        amount in 1u64..1_000_000,
    ) {
        let mut cert = honest();
        let expected_kind = forge(&mut cert, which, amount);
        let v = verify(&cert.sealed(), &Expected::default()).unwrap_err();
        prop_assert_eq!(v.kind, expected_kind, "forgery {}", which);
    }

    // Forged digest *values* (well-formed hex, wrong document) are only
    // catchable against what the auditor knows — and they are.
    #[test]
    fn prop_wrong_digest_rejected_when_expected_is_pinned(
        doc in any::<bool>(),
        // A non-zero high half keeps the forged digest strictly above
        // both honest digests (0xabc / 0xdef): always genuinely wrong.
        hi in 1u64..u64::MAX,
        lo in 0u64..u64::MAX,
    ) {
        let mut cert = honest();
        let forged = digest_hex(((hi as u128) << 64) | lo as u128);
        let kind = if doc {
            cert.doc_digest = forged;
            ConstraintKind::DocDigestBinding
        } else {
            cert.shape_digest = forged;
            ConstraintKind::ShapeDigestBinding
        };
        let pinned = Expected {
            doc_digest: Some(digest_hex(0xabc)),
            shape_digest: Some(digest_hex(0xdef)),
            machine: Some(machine()),
        };
        // Pure-self-check still passes (the digests are well-formed)...
        verify(&cert.clone().sealed(), &Expected::default()).expect("self-check passes");
        // ...but the pinned audit rejects.
        let v = verify(&cert.sealed(), &pinned).unwrap_err();
        prop_assert_eq!(v.kind, kind);
    }
}
