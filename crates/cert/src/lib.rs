//! # nsc-cert — run certificates and the independent fail-closed verifier
//!
//! The engine's compile pipeline (`nsc_core::Session::compile`) is a lot
//! of trusted code: binder, 29-rule checker, code generator, kernel
//! specializer. With the park and ensemble layers batching hundreds of
//! jobs per session, a wrong-but-plausible compile silently poisons
//! every member of a sweep — and the members are too numerous to re-run.
//!
//! This crate ports the *untrusted engine, trusted checker* pattern: the
//! engine emits a compact [`CompileCertificate`] for every compile —
//! resource census against the machine limits, kernel validity windows,
//! the e-cube route of every halo message, a window-coverage proof for
//! the overlap split — sealed with FNV-1a 128 and bound to the
//! document's content digest. [`fn@verify`] is the small, auditable other
//! half: it re-checks every obligation from the certificate alone,
//! re-deriving the routing and tiling math independently, and rejects on
//! the first failure. Nothing in this crate links against the checker,
//! the code generator or the simulator; the only shared vocabulary is
//! the [`ConstraintKind`] taxonomy, which also owns the checker's stable
//! rule ids.
//!
//! ## Auditing a run
//!
//! ```
//! use nsc_cert::{
//!     digest_hex, verify, CompileCertificate, CompilePath, Expected, InstrCensus,
//!     KernelWindow, MachineLimits, ResourceCensus, RouteCert,
//! };
//!
//! // What an engine would emit for a tiny one-instruction program that
//! // streams 512 words through 3 units and sends one halo message.
//! let machine = MachineLimits {
//!     fu_count: 32, planes: 16, words_per_plane: 1 << 24,
//!     caches: 16, cache_buffers: 2, cache_words_per_buffer: 8192,
//!     sdu_units: 2, sdu_taps_per_unit: 4, sdu_buffer_words: 16384,
//!     max_sdu_taps: 8, rf_words: 64, clock_hz: 20_000_000,
//! };
//! let cert = CompileCertificate {
//!     doc_digest: digest_hex(0x1234),
//!     shape_digest: digest_hex(0x5678),
//!     compile_path: CompilePath::Full,
//!     machine,
//!     census: ResourceCensus {
//!         instructions: vec![InstrCensus {
//!             index: 0, active_fus: 3, sdu: vec![], planes: vec![], caches: vec![],
//!         }],
//!         active_fus: 3, sdu_taps: 0, plane_words: 0, cache_words: 0,
//!     },
//!     windows: vec![KernelWindow {
//!         index: 0, executed_cycles: 520, flops: 1024, streamed: 512, stored: 512,
//!     }],
//!     routes: vec![RouteCert { from: 0, to: 5, words: 81, path: vec![0, 1, 5] }],
//!     coverage: vec![],
//!     lease: None,
//!     seal: String::new(),
//! }
//! .sealed();
//!
//! // The auditor re-checks it against the digest it recorded itself.
//! let expected = Expected { doc_digest: Some(digest_hex(0x1234)), ..Default::default() };
//! let report = verify(&cert, &expected).expect("honest certificate");
//! assert!(report.obligations >= 10);
//!
//! // A forged route (wrong e-cube order) is rejected even after resealing.
//! let mut forged = cert.clone();
//! forged.routes[0].path = vec![0, 4, 5];
//! let violation = verify(&forged.sealed(), &expected).unwrap_err();
//! assert_eq!(violation.kind.id(), "V014");
//! ```

#![warn(missing_docs)]

pub mod certificate;
pub mod taxonomy;
pub mod verify;

pub use self::certificate::{
    digest_from_hex, digest_hex, CacheSpan, CompileCertificate, CompilePath, CoverageCert,
    InstrCensus, KernelWindow, LeaseCert, MachineLimits, PlaneSpan, ResourceCensus, RouteCert,
    SduUse, WindowSpan,
};
pub use self::taxonomy::{ConstraintCategory, ConstraintKind};
pub use self::verify::{verify, Expected, VerifyReport, Violation};
