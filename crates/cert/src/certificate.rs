//! The certificate data model: what the untrusted engine claims about
//! one compile, sealed so any later mutation is detectable.
//!
//! A [`CompileCertificate`] is a compact, serializable claim bundle
//! bound to a document by its content digest. It records the machine
//! limits the compile ran against, a per-instruction resource census,
//! the kernel calculus's per-instruction windows, the halo routes the
//! surrounding partition will exercise, and the window-coverage proof of
//! the overlap split — everything [`fn@crate::verify`] needs to re-check
//! legality without touching the engine.
//!
//! The seal is FNV-1a (128-bit) over a canonical byte encoding of the
//! certificate's serialized value tree (with the seal field cleared), so
//! the certificate can be stored, shipped as JSON, and re-verified
//! byte-for-byte later. Digests from `nsc_diagram::Document` are `u128`s
//! on the engine side; they travel here as 32-digit lowercase hex
//! strings ([`digest_hex`]), the portable form every serializer in the
//! workspace can carry.

use serde::{Deserialize, Serialize};

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013B;

/// A `u128` digest in its portable form: 32 lowercase hex digits.
pub fn digest_hex(d: u128) -> String {
    format!("{d:032x}")
}

/// Parse a [`digest_hex`] string back to the `u128` digest. `None` if
/// the string is not exactly 32 lowercase hex digits.
pub fn digest_from_hex(s: &str) -> Option<u128> {
    if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b)) {
        return None;
    }
    u128::from_str_radix(s, 16).ok()
}

/// Which path through [`Session::compile`] produced this certificate —
/// surfaced so an audit can tell a full compile from a cache hit or a
/// preload rebind (see `Session::cache_stats`).
///
/// [`Session::compile`]: https://docs.rs/nsc-core
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompilePath {
    /// Full pipeline: check, codegen, kernel specialization.
    Full,
    /// Digest-identical document served verbatim from the kernel cache.
    CacheHit,
    /// Shape-identical document: cached program re-patched with new
    /// functional-unit preloads, kernel respecialized, check and codegen
    /// skipped.
    Rebind,
}

impl CompilePath {
    /// Short label for audit tables.
    pub fn label(&self) -> &'static str {
        match self {
            CompilePath::Full => "full",
            CompilePath::CacheHit => "hit",
            CompilePath::Rebind => "rebind",
        }
    }
}

/// The machine limits the compile ran against — the denominators of
/// every capacity obligation. Mirrors `nsc_arch::MachineConfig` without
/// depending on it: the verifier trusts only what the certificate says,
/// and an auditor can pin the limits via `Expected::machine`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineLimits {
    /// Functional units on a node (triplets*3 + doublets*2 + singlets).
    pub fu_count: u32,
    /// Memory planes per node.
    pub planes: u32,
    /// Words per memory plane.
    pub words_per_plane: u64,
    /// Data caches per node.
    pub caches: u32,
    /// Buffers per cache.
    pub cache_buffers: u32,
    /// Words per cache buffer.
    pub cache_words_per_buffer: u64,
    /// Shift/delay units per node.
    pub sdu_units: u32,
    /// Taps per shift/delay unit.
    pub sdu_taps_per_unit: u32,
    /// Words in a shift/delay unit's buffer (bounds the tap delays).
    pub sdu_buffer_words: u64,
    /// The diagram-level tap budget per delay queue
    /// (`nsc_diagram::MAX_SDU_TAPS`).
    pub max_sdu_taps: u32,
    /// Register-file words (bounds delay-queue depth).
    pub rf_words: u32,
    /// Node clock, Hz.
    pub clock_hz: u64,
}

/// One DMA stream's address span on a memory plane.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlaneSpan {
    /// Plane index.
    pub plane: u32,
    /// Lowest word address touched.
    pub lo: u64,
    /// Highest word address touched (inclusive).
    pub hi: u64,
    /// Words transferred.
    pub words: u64,
    /// Whether this is a write stream.
    pub write: bool,
}

/// One DMA stream's address span in a cache buffer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheSpan {
    /// Cache index.
    pub cache: u32,
    /// Buffer index within the cache.
    pub buffer: u32,
    /// Lowest word offset touched.
    pub lo: u64,
    /// Highest word offset touched (inclusive).
    pub hi: u64,
    /// Words transferred.
    pub words: u64,
    /// Whether this is a write stream.
    pub write: bool,
}

/// One shift/delay unit's tap usage in one instruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SduUse {
    /// Unit index.
    pub unit: u32,
    /// Enabled taps.
    pub taps: u32,
    /// Largest tap delay, cycles.
    pub max_delay: u64,
}

/// The resource census of one microinstruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstrCensus {
    /// Instruction index in the program.
    pub index: u32,
    /// Functional units with an enabled operation.
    pub active_fus: u32,
    /// Shift/delay units in use.
    pub sdu: Vec<SduUse>,
    /// Plane DMA spans, in plane order.
    pub planes: Vec<PlaneSpan>,
    /// Cache DMA spans, in cache order.
    pub caches: Vec<CacheSpan>,
}

/// The whole program's census: per-instruction detail plus redundant
/// totals the verifier cross-checks (an inconsistent total is a tamper
/// signal even when every per-instruction row is individually legal).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResourceCensus {
    /// Per-instruction census rows, in instruction order.
    pub instructions: Vec<InstrCensus>,
    /// Σ active functional units over all instructions.
    pub active_fus: u64,
    /// Σ enabled SDU taps over all instructions.
    pub sdu_taps: u64,
    /// Σ plane DMA words over all instructions.
    pub plane_words: u64,
    /// Σ cache DMA words over all instructions.
    pub cache_words: u64,
}

/// The kernel calculus's claim for one specialized instruction: its
/// validity window in cycles and the work budget inside it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelWindow {
    /// Instruction index the window belongs to.
    pub index: u32,
    /// Cycles the pipeline executes for.
    pub executed_cycles: u64,
    /// Floating-point operations performed inside the window.
    pub flops: u64,
    /// Elements streamed from memory/caches.
    pub streamed: u64,
    /// Elements stored back.
    pub stored: u64,
}

/// One halo message's claimed route over the hypercube. Node ids are in
/// the coordinates the job ran under — lease-local when the certificate
/// carries a [`LeaseCert`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteCert {
    /// Sending node.
    pub from: u64,
    /// Receiving node.
    pub to: u64,
    /// Words per exchange on this route.
    pub words: u64,
    /// The claimed e-cube path, inclusive of both endpoints.
    pub path: Vec<u64>,
}

/// One window of an overlap split, in local layer coordinates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowSpan {
    /// First owned layer the window covers.
    pub start: u64,
    /// Layers covered.
    pub len: u64,
    /// Residual cache slot the window's reduction lands in.
    pub slot: u32,
}

/// The window-coverage proof for one part: the windows must tile the
/// part's owned layers exactly once.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageCert {
    /// Part index in partition order.
    pub part: u32,
    /// Node the part runs on.
    pub node: u64,
    /// First owned layer, local coordinates.
    pub owned_start: u64,
    /// Owned layers along the overlap axis.
    pub owned_len: u64,
    /// The split's windows (interior + boundary shells, or the single
    /// fused window).
    pub windows: Vec<WindowSpan>,
}

/// The sub-cube a leased job ran inside, stamped by the park so the
/// verifier can check route containment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeaseCert {
    /// Base node of the sub-cube in machine coordinates.
    pub base: u64,
    /// Sub-cube dimension (2^dimension nodes).
    pub dimension: u32,
}

/// What one compile claims: the engine's side of the "untrusted engine,
/// trusted checker" contract. Build it field by field, then
/// [`CompileCertificate::sealed`]; check it with [`fn@crate::verify`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompileCertificate {
    /// [`digest_hex`] of the compiled document's full content digest.
    pub doc_digest: String,
    /// [`digest_hex`] of the document's shape digest (preload values
    /// masked) — what the rebind path keys on.
    pub shape_digest: String,
    /// Which compile path produced the program.
    pub compile_path: CompilePath,
    /// The machine limits the compile ran against.
    pub machine: MachineLimits,
    /// Per-instruction resource census plus redundant totals.
    pub census: ResourceCensus,
    /// Kernel validity windows for the specialized instructions.
    pub windows: Vec<KernelWindow>,
    /// Halo routes the surrounding partition exercises (empty for a
    /// single-node compile).
    pub routes: Vec<RouteCert>,
    /// Window-coverage proofs, one per part (empty for a single-node
    /// compile).
    pub coverage: Vec<CoverageCert>,
    /// The sub-cube lease, when the park stamped one.
    pub lease: Option<LeaseCert>,
    /// FNV-1a 128 seal over the canonical bytes with this field empty.
    pub seal: String,
}

impl CompileCertificate {
    /// The canonical byte encoding the seal covers: a type-tagged,
    /// length-prefixed walk of the serialized value tree with the seal
    /// field cleared. Field order is declaration order (the derive
    /// serializer emits it deterministically), so equal certificates
    /// have equal canonical bytes.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut unsealed = self.clone();
        unsealed.seal = String::new();
        let mut out = Vec::with_capacity(1024);
        canon_value(&unsealed.to_value(), &mut out);
        out
    }

    /// The seal this certificate's current contents hash to.
    pub fn compute_seal(&self) -> String {
        digest_hex(fnv128(&self.canonical_bytes()))
    }

    /// Consume the certificate and stamp its seal. Call after every
    /// mutation — a stale seal is a verification failure by design.
    pub fn sealed(mut self) -> Self {
        self.seal = self.compute_seal();
        self
    }

    /// A copy with the compile path re-stamped and the seal refreshed —
    /// what the cache-hit and rebind paths emit from the cached base
    /// certificate.
    pub fn with_path(&self, path: CompilePath, doc_digest: String) -> Self {
        let mut c = self.clone();
        c.compile_path = path;
        c.doc_digest = doc_digest;
        c.sealed()
    }

    /// A copy extended with partition topology claims (routes and
    /// window coverage), resealed.
    pub fn with_topology(&self, routes: Vec<RouteCert>, coverage: Vec<CoverageCert>) -> Self {
        let mut c = self.clone();
        c.routes = routes;
        c.coverage = coverage;
        c.sealed()
    }

    /// A copy stamped with the sub-cube lease it ran inside, resealed —
    /// what the park adds when it collects a job's certificates.
    pub fn with_lease(&self, lease: LeaseCert) -> Self {
        let mut c = self.clone();
        c.lease = Some(lease);
        c.sealed()
    }
}

/// FNV-1a 128 over a byte string.
pub(crate) fn fnv128(bytes: &[u8]) -> u128 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Canonical encoding of a serialized value tree: one tag byte per node,
/// little-endian fixed-width scalars, u64 length prefixes on strings,
/// arrays and objects.
fn canon_value(v: &serde::Value, out: &mut Vec<u8>) {
    match v {
        serde::Value::Null => out.push(0),
        serde::Value::Bool(b) => {
            out.push(1);
            out.push(*b as u8);
        }
        serde::Value::Int(i) => {
            out.push(2);
            out.extend(i.to_le_bytes());
        }
        serde::Value::UInt(u) => {
            out.push(3);
            out.extend(u.to_le_bytes());
        }
        serde::Value::Float(f) => {
            out.push(4);
            out.extend(f.to_bits().to_le_bytes());
        }
        serde::Value::Str(s) => {
            out.push(5);
            out.extend((s.len() as u64).to_le_bytes());
            out.extend(s.as_bytes());
        }
        serde::Value::Array(a) => {
            out.push(6);
            out.extend((a.len() as u64).to_le_bytes());
            for item in a {
                canon_value(item, out);
            }
        }
        serde::Value::Object(fields) => {
            out.push(7);
            out.extend((fields.len() as u64).to_le_bytes());
            for (key, value) in fields {
                out.push(5);
                out.extend((key.len() as u64).to_le_bytes());
                out.extend(key.as_bytes());
                canon_value(value, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cert() -> CompileCertificate {
        CompileCertificate {
            doc_digest: digest_hex(1),
            shape_digest: digest_hex(2),
            compile_path: CompilePath::Full,
            machine: MachineLimits {
                fu_count: 32,
                planes: 16,
                words_per_plane: 1 << 24,
                caches: 16,
                cache_buffers: 2,
                cache_words_per_buffer: 8192,
                sdu_units: 2,
                sdu_taps_per_unit: 4,
                sdu_buffer_words: 16384,
                max_sdu_taps: 8,
                rf_words: 64,
                clock_hz: 20_000_000,
            },
            census: ResourceCensus::default(),
            windows: Vec::new(),
            routes: Vec::new(),
            coverage: Vec::new(),
            lease: None,
            seal: String::new(),
        }
    }

    #[test]
    fn digest_hex_roundtrip() {
        for d in [0u128, 1, u128::MAX, 0xdead_beef_cafe_babe_0123_4567_89ab_cdef] {
            assert_eq!(digest_from_hex(&digest_hex(d)), Some(d));
        }
        assert_eq!(digest_from_hex("xyz"), None);
        assert_eq!(digest_from_hex(&"F".repeat(32)), None, "uppercase rejected");
        assert_eq!(digest_from_hex(&"0".repeat(31)), None);
    }

    #[test]
    fn seal_is_stable_and_tamper_sensitive() {
        let c = tiny_cert().sealed();
        assert_eq!(c.seal, c.compute_seal(), "sealing is idempotent over contents");
        assert_eq!(c.clone().sealed().seal, c.seal);
        let mut tampered = c.clone();
        tampered.census.active_fus = 7;
        assert_ne!(tampered.compute_seal(), c.seal, "any field change moves the seal");
    }

    #[test]
    fn restamp_helpers_reseal() {
        let base = tiny_cert().sealed();
        let hit = base.with_path(CompilePath::CacheHit, base.doc_digest.clone());
        assert_eq!(hit.compile_path, CompilePath::CacheHit);
        assert_eq!(hit.seal, hit.compute_seal());
        assert_ne!(hit.seal, base.seal);
        let leased = base.with_lease(LeaseCert { base: 8, dimension: 3 });
        assert_eq!(leased.lease, Some(LeaseCert { base: 8, dimension: 3 }));
        assert_eq!(leased.seal, leased.compute_seal());
    }

    #[test]
    fn json_roundtrip_preserves_seal() {
        let c = tiny_cert().sealed();
        let json = serde_json::to_string(&c).expect("serializes");
        let back: CompileCertificate = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, c);
        assert_eq!(back.compute_seal(), back.seal);
    }
}
