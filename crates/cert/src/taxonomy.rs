//! The constraint taxonomy: one enumerable vocabulary for every rule the
//! compile pipeline enforces and every obligation the certificate
//! verifier re-checks.
//!
//! The checker's 29 diagram rules (`C001`–`C029`) and the verifier's 16
//! certificate obligations (`V001`–`V016`) share this enum so the stable
//! ids live in exactly one place: `nsc_checker::RuleCode::code()`
//! delegates here, and [`fn@crate::verify`] reports violations as
//! [`ConstraintKind`]s. Tests can enumerate [`ConstraintKind::ALL`] to
//! assert coverage or id stability.

use std::fmt;

/// Which layer of the legality story a constraint belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintCategory {
    /// Icon/resource binding: names resolve to real, compatible hardware.
    Binding,
    /// Hard capacity limits of the machine (units, taps, ports, buffers).
    Capacity,
    /// Dataflow well-formedness of the drawn pipeline.
    Dataflow,
    /// Control flow and convergence plumbing.
    Control,
    /// Internal consistency of the certificate itself (seal, digests,
    /// census redundancy, kernel-window bounds).
    Certificate,
    /// Legality of routed halo messages over the hypercube.
    Routing,
    /// Window-coverage proofs for overlap splits.
    Coverage,
}

impl fmt::Display for ConstraintCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConstraintCategory::Binding => "binding",
            ConstraintCategory::Capacity => "capacity",
            ConstraintCategory::Dataflow => "dataflow",
            ConstraintCategory::Control => "control",
            ConstraintCategory::Certificate => "certificate",
            ConstraintCategory::Routing => "routing",
            ConstraintCategory::Coverage => "coverage",
        };
        f.write_str(s)
    }
}

/// Every constraint the pipeline knows, checker rules and verifier
/// obligations alike. The `C`-prefixed ids are the checker's historical
/// rule codes (stable since PR 1); the `V`-prefixed ids are the
/// certificate obligations this crate's verifier re-checks fail-closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // each variant is documented by describe()
pub enum ConstraintKind {
    // Checker rules (diagram legality), C001..C029.
    UnboundIcon,
    DuplicateBinding,
    NoSuchResource,
    AlsOvercommit,
    SinkDrivenTwice,
    FanoutExceeded,
    PlaneContention,
    FuMultiPlane,
    CapabilityViolation,
    ArityMismatch,
    QueueDepthExceeded,
    SduTapCount,
    SduDelayRange,
    DmaMissing,
    DmaRange,
    UndeclaredVariable,
    StreamLenMismatch,
    SubsetViolation,
    CycleDetected,
    DeadOutput,
    NoStore,
    SelfLoop,
    CacheCapacity,
    DanglingControlRef,
    UnwrittenCondition,
    UnusedIcon,
    BindingKindMismatch,
    SduSourceKind,
    InactiveUnit,
    // Verifier obligations (certificate legality), V001..V016.
    SealIntegrity,
    DocDigestBinding,
    ShapeDigestBinding,
    CertWellFormed,
    CensusTotals,
    FuCensusBound,
    SduTapBound,
    SduDelayBound,
    PlaneDmaBound,
    CacheDmaBound,
    FlopWindowBound,
    RouteEndpoints,
    RouteMinimal,
    RouteEcubeOrder,
    RouteContainment,
    CoverageTiling,
}

impl ConstraintKind {
    /// Every constraint, checker rules first, in id order.
    pub const ALL: [ConstraintKind; 45] = [
        ConstraintKind::UnboundIcon,
        ConstraintKind::DuplicateBinding,
        ConstraintKind::NoSuchResource,
        ConstraintKind::AlsOvercommit,
        ConstraintKind::SinkDrivenTwice,
        ConstraintKind::FanoutExceeded,
        ConstraintKind::PlaneContention,
        ConstraintKind::FuMultiPlane,
        ConstraintKind::CapabilityViolation,
        ConstraintKind::ArityMismatch,
        ConstraintKind::QueueDepthExceeded,
        ConstraintKind::SduTapCount,
        ConstraintKind::SduDelayRange,
        ConstraintKind::DmaMissing,
        ConstraintKind::DmaRange,
        ConstraintKind::UndeclaredVariable,
        ConstraintKind::StreamLenMismatch,
        ConstraintKind::SubsetViolation,
        ConstraintKind::CycleDetected,
        ConstraintKind::DeadOutput,
        ConstraintKind::NoStore,
        ConstraintKind::SelfLoop,
        ConstraintKind::CacheCapacity,
        ConstraintKind::DanglingControlRef,
        ConstraintKind::UnwrittenCondition,
        ConstraintKind::UnusedIcon,
        ConstraintKind::BindingKindMismatch,
        ConstraintKind::SduSourceKind,
        ConstraintKind::InactiveUnit,
        ConstraintKind::SealIntegrity,
        ConstraintKind::DocDigestBinding,
        ConstraintKind::ShapeDigestBinding,
        ConstraintKind::CertWellFormed,
        ConstraintKind::CensusTotals,
        ConstraintKind::FuCensusBound,
        ConstraintKind::SduTapBound,
        ConstraintKind::SduDelayBound,
        ConstraintKind::PlaneDmaBound,
        ConstraintKind::CacheDmaBound,
        ConstraintKind::FlopWindowBound,
        ConstraintKind::RouteEndpoints,
        ConstraintKind::RouteMinimal,
        ConstraintKind::RouteEcubeOrder,
        ConstraintKind::RouteContainment,
        ConstraintKind::CoverageTiling,
    ];

    /// The stable short id (`"C005"`, `"V012"`) used in messages, tests
    /// and audit reports.
    pub fn id(&self) -> &'static str {
        use ConstraintKind::*;
        match self {
            UnboundIcon => "C001",
            DuplicateBinding => "C002",
            NoSuchResource => "C003",
            AlsOvercommit => "C004",
            SinkDrivenTwice => "C005",
            FanoutExceeded => "C006",
            PlaneContention => "C007",
            FuMultiPlane => "C008",
            CapabilityViolation => "C009",
            ArityMismatch => "C010",
            QueueDepthExceeded => "C011",
            SduTapCount => "C012",
            SduDelayRange => "C013",
            DmaMissing => "C014",
            DmaRange => "C015",
            UndeclaredVariable => "C016",
            StreamLenMismatch => "C017",
            SubsetViolation => "C018",
            CycleDetected => "C019",
            DeadOutput => "C020",
            NoStore => "C021",
            SelfLoop => "C022",
            CacheCapacity => "C023",
            DanglingControlRef => "C024",
            UnwrittenCondition => "C025",
            UnusedIcon => "C026",
            BindingKindMismatch => "C027",
            SduSourceKind => "C028",
            InactiveUnit => "C029",
            SealIntegrity => "V001",
            DocDigestBinding => "V002",
            ShapeDigestBinding => "V003",
            CertWellFormed => "V004",
            CensusTotals => "V005",
            FuCensusBound => "V006",
            SduTapBound => "V007",
            SduDelayBound => "V008",
            PlaneDmaBound => "V009",
            CacheDmaBound => "V010",
            FlopWindowBound => "V011",
            RouteEndpoints => "V012",
            RouteMinimal => "V013",
            RouteEcubeOrder => "V014",
            RouteContainment => "V015",
            CoverageTiling => "V016",
        }
    }

    /// Which layer of the legality story the constraint belongs to.
    pub fn category(&self) -> ConstraintCategory {
        use ConstraintCategory as Cat;
        use ConstraintKind::*;
        match self {
            UnboundIcon | DuplicateBinding | NoSuchResource | CapabilityViolation
            | UndeclaredVariable | BindingKindMismatch => Cat::Binding,
            AlsOvercommit | FanoutExceeded | PlaneContention | FuMultiPlane
            | QueueDepthExceeded | SduTapCount | SduDelayRange | DmaRange | SubsetViolation
            | CacheCapacity | FuCensusBound | SduTapBound | SduDelayBound | PlaneDmaBound
            | CacheDmaBound => Cat::Capacity,
            SinkDrivenTwice | ArityMismatch | DmaMissing | StreamLenMismatch | CycleDetected
            | DeadOutput | NoStore | SelfLoop | UnusedIcon | SduSourceKind | InactiveUnit => {
                Cat::Dataflow
            }
            DanglingControlRef | UnwrittenCondition => Cat::Control,
            SealIntegrity | DocDigestBinding | ShapeDigestBinding | CertWellFormed
            | CensusTotals | FlopWindowBound => Cat::Certificate,
            RouteEndpoints | RouteMinimal | RouteEcubeOrder | RouteContainment => Cat::Routing,
            CoverageTiling => Cat::Coverage,
        }
    }

    /// One-line description of what the constraint requires.
    pub fn describe(&self) -> &'static str {
        use ConstraintKind::*;
        match self {
            UnboundIcon => "icon not yet bound to a physical resource",
            DuplicateBinding => "two icons bound to the same physical resource",
            NoSuchResource => "bound resource does not exist on this machine",
            AlsOvercommit => "more ALS icons of a kind than the machine has",
            SinkDrivenTwice => "two wires drive the same sink pad",
            FanoutExceeded => "a source pad drives more sinks than the switch fan-out allows",
            PlaneContention => "a memory plane's port used by conflicting streams",
            FuMultiPlane => "one functional unit touching more than one memory plane",
            CapabilityViolation => "operation not supported by the unit's capabilities",
            ArityMismatch => "wires on a unit's pads disagree with its operation's operands",
            QueueDepthExceeded => "register-file delay queue deeper than the register file",
            SduTapCount => "shift/delay tap index or count beyond the machine's taps",
            SduDelayRange => "shift/delay tap delay beyond the unit's buffer",
            DmaMissing => "memory/cache wire without DMA attributes",
            DmaRange => "DMA transfer runs outside the plane/cache/variable bounds",
            UndeclaredVariable => "DMA names a variable that is not declared",
            StreamLenMismatch => "stream length inconsistent with an explicit DMA count",
            SubsetViolation => "more units active in an ALS than the subset model allows",
            CycleDetected => "dataflow cycle through the switch",
            DeadOutput => "an enabled unit's output feeds nothing",
            NoStore => "the pipeline stores no result anywhere",
            SelfLoop => "a wire loops a unit's output directly to its own input",
            CacheCapacity => "cache DMA larger than one cache buffer",
            DanglingControlRef => "control flow references a pipeline that does not exist",
            UnwrittenCondition => "a convergence test reads a scalar nothing writes",
            UnusedIcon => "icon participates in no connection",
            BindingKindMismatch => "ALS icon bound to a physical ALS of a different kind",
            SduSourceKind => "shift/delay unit fed by something other than memory or cache",
            InactiveUnit => "a unit is wired or programmed on an inactive pad",
            SealIntegrity => "certificate bytes must hash to the recorded seal",
            DocDigestBinding => "certificate must bind to the expected document digest",
            ShapeDigestBinding => "certificate must bind to the expected shape digest",
            CertWellFormed => "certificate structure must be internally coherent",
            CensusTotals => "census totals must equal the per-instruction sums",
            FuCensusBound => "active functional units must fit the machine",
            SduTapBound => "SDU taps must fit the machine's tap budget",
            SduDelayBound => "SDU tap delays must fit the unit buffer",
            PlaneDmaBound => "plane DMA spans must stay inside the plane",
            CacheDmaBound => "cache DMA spans must stay inside one cache buffer",
            FlopWindowBound => "claimed flops must fit the active units over the window",
            RouteEndpoints => "a route's path must start and end at its endpoints",
            RouteMinimal => "a route must take exactly the Hamming-distance hops",
            RouteEcubeOrder => "a route must correct dimensions lowest-bit-first (e-cube)",
            RouteContainment => "a leased job's route must stay inside its sub-cube",
            CoverageTiling => "overlap windows must tile the owned layers exactly once",
        }
    }

    /// Whether this constraint is a checker diagram rule (`C…`) rather
    /// than a verifier obligation (`V…`).
    pub fn is_checker_rule(&self) -> bool {
        self.id().starts_with('C')
    }
}

impl fmt::Display for ConstraintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}): {}", self.id(), self.category(), self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_unique_and_sequential() {
        let ids: Vec<&str> = ConstraintKind::ALL.iter().map(|k| k.id()).collect();
        let set: HashSet<&&str> = ids.iter().collect();
        assert_eq!(set.len(), ConstraintKind::ALL.len());
        let checker: Vec<&&str> = ids.iter().filter(|i| i.starts_with('C')).collect();
        let verifier: Vec<&&str> = ids.iter().filter(|i| i.starts_with('V')).collect();
        assert_eq!(checker.len(), 29, "the 29 historical checker rules");
        assert_eq!(verifier.len(), 16, "the 16 certificate obligations");
        for (n, id) in checker.iter().enumerate() {
            assert_eq!(***id, format!("C{:03}", n + 1));
        }
        for (n, id) in verifier.iter().enumerate() {
            assert_eq!(***id, format!("V{:03}", n + 1));
        }
    }

    #[test]
    fn every_kind_has_category_and_description() {
        for k in ConstraintKind::ALL {
            assert!(!k.describe().is_empty());
            let s = k.to_string();
            assert!(s.contains(k.id()), "{s}");
        }
        assert!(ConstraintKind::SinkDrivenTwice.is_checker_rule());
        assert!(!ConstraintKind::SealIntegrity.is_checker_rule());
        assert_eq!(ConstraintKind::RouteMinimal.category(), ConstraintCategory::Routing);
    }
}
