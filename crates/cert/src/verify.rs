//! The trusted side of the contract: a small, independent, fail-closed
//! re-check of every certificate obligation.
//!
//! Nothing here touches the engine. The verifier re-implements the
//! little math it needs from first principles — Hamming distance,
//! e-cube dimension order, sub-cube alignment, interval tiling — and
//! checks the certificate against itself (seal, census redundancy,
//! capacity bounds) and against what the auditor independently knows
//! (the document digests, the machine limits, the lease). Any failure
//! is a rejection; there is no warning tier.

use crate::certificate::{digest_from_hex, CompileCertificate, MachineLimits};
use crate::taxonomy::ConstraintKind;
use std::fmt;

/// What the auditor independently knows about the run. Every field is
/// optional — `Expected::default()` checks the certificate purely
/// against itself — but each field supplied becomes a binding
/// obligation.
#[derive(Debug, Clone, Default)]
pub struct Expected {
    /// The document digest the auditor computed (or recorded at
    /// submission time), in [`crate::digest_hex`] form.
    pub doc_digest: Option<String>,
    /// The shape digest the auditor computed.
    pub shape_digest: Option<String>,
    /// The machine limits the run was supposed to use.
    pub machine: Option<MachineLimits>,
}

/// A rejected certificate: which obligation failed and why.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The obligation that failed.
    pub kind: ConstraintKind,
    /// What exactly was wrong.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "certificate rejected [{}]: {}", self.kind.id(), self.detail)
    }
}

impl std::error::Error for Violation {}

/// An accepted certificate: how many obligations were discharged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyReport {
    /// Obligations checked (each census row, window, route and coverage
    /// proof counts individually).
    pub obligations: usize,
}

macro_rules! demand {
    ($count:expr, $cond:expr, $kind:expr, $($arg:tt)*) => {{
        $count += 1;
        if !($cond) {
            return Err(Violation { kind: $kind, detail: format!($($arg)*) });
        }
    }};
}

/// Verify one certificate fail-closed. `Ok` means every obligation
/// held; the first failed obligation aborts with its [`Violation`].
///
/// ```
/// use nsc_cert::{verify, Expected};
/// # use nsc_cert::{CompileCertificate, CompilePath, MachineLimits, ResourceCensus, digest_hex};
/// # let machine = MachineLimits { fu_count: 32, planes: 16, words_per_plane: 1 << 24,
/// #     caches: 16, cache_buffers: 2, cache_words_per_buffer: 8192, sdu_units: 2,
/// #     sdu_taps_per_unit: 4, sdu_buffer_words: 16384, max_sdu_taps: 8, rf_words: 64,
/// #     clock_hz: 20_000_000 };
/// # let cert = CompileCertificate { doc_digest: digest_hex(1), shape_digest: digest_hex(2),
/// #     compile_path: CompilePath::Full, machine, census: ResourceCensus::default(),
/// #     windows: vec![], routes: vec![], coverage: vec![], lease: None,
/// #     seal: String::new() }.sealed();
/// let report = verify(&cert, &Expected::default())?;
/// assert!(report.obligations > 0);
///
/// // Tampering with any field after sealing is caught.
/// let mut forged = cert.clone();
/// forged.census.active_fus += 1;
/// let rejection = verify(&forged, &Expected::default()).unwrap_err();
/// assert_eq!(rejection.kind.id(), "V001"); // seal integrity
/// # Ok::<(), nsc_cert::Violation>(())
/// ```
pub fn verify(cert: &CompileCertificate, expected: &Expected) -> Result<VerifyReport, Violation> {
    let mut n = 0usize;
    use ConstraintKind as K;

    // V001 — the seal covers every other obligation's inputs.
    demand!(
        n,
        cert.seal == cert.compute_seal(),
        K::SealIntegrity,
        "seal {} does not match canonical bytes ({})",
        cert.seal,
        cert.compute_seal()
    );

    // V002/V003 — digest binding: well-formed, and equal to what the
    // auditor knows when supplied.
    demand!(
        n,
        digest_from_hex(&cert.doc_digest).is_some(),
        K::DocDigestBinding,
        "doc digest '{}' is not a 32-digit hex digest",
        cert.doc_digest
    );
    if let Some(want) = &expected.doc_digest {
        demand!(
            n,
            &cert.doc_digest == want,
            K::DocDigestBinding,
            "certificate binds doc digest {} but the audited document is {want}",
            cert.doc_digest
        );
    }
    demand!(
        n,
        digest_from_hex(&cert.shape_digest).is_some(),
        K::ShapeDigestBinding,
        "shape digest '{}' is not a 32-digit hex digest",
        cert.shape_digest
    );
    if let Some(want) = &expected.shape_digest {
        demand!(
            n,
            &cert.shape_digest == want,
            K::ShapeDigestBinding,
            "certificate binds shape digest {} but the audited document is {want}",
            cert.shape_digest
        );
    }

    // V004 — structural coherence: sane limits, ordered census rows,
    // windows referring to census instructions.
    let m = &cert.machine;
    demand!(
        n,
        m.fu_count > 0 && m.planes > 0 && m.words_per_plane > 0 && m.clock_hz > 0,
        K::CertWellFormed,
        "machine limits are degenerate: {m:?}"
    );
    if let Some(want) = &expected.machine {
        demand!(
            n,
            m == want,
            K::CertWellFormed,
            "certificate claims machine limits {m:?} but the audit expects {want:?}"
        );
    }
    let mut last_index: Option<u32> = None;
    for row in &cert.census.instructions {
        demand!(
            n,
            last_index.is_none_or(|prev| row.index > prev),
            K::CertWellFormed,
            "census rows out of order at instruction {}",
            row.index
        );
        last_index = Some(row.index);
    }
    for w in &cert.windows {
        demand!(
            n,
            cert.census.instructions.iter().any(|r| r.index == w.index),
            K::CertWellFormed,
            "kernel window for instruction {} has no census row",
            w.index
        );
    }

    // V005 — redundant totals must equal the per-row sums.
    let sum_fus: u64 = cert.census.instructions.iter().map(|r| r.active_fus as u64).sum();
    let sum_taps: u64 =
        cert.census.instructions.iter().flat_map(|r| &r.sdu).map(|s| s.taps as u64).sum();
    let sum_plane: u64 =
        cert.census.instructions.iter().flat_map(|r| &r.planes).map(|p| p.words).sum();
    let sum_cache: u64 =
        cert.census.instructions.iter().flat_map(|r| &r.caches).map(|c| c.words).sum();
    demand!(
        n,
        cert.census.active_fus == sum_fus,
        K::CensusTotals,
        "total active FUs {} != per-instruction sum {sum_fus}",
        cert.census.active_fus
    );
    demand!(
        n,
        cert.census.sdu_taps == sum_taps,
        K::CensusTotals,
        "total SDU taps {} != per-instruction sum {sum_taps}",
        cert.census.sdu_taps
    );
    demand!(
        n,
        cert.census.plane_words == sum_plane,
        K::CensusTotals,
        "total plane DMA words {} != per-instruction sum {sum_plane}",
        cert.census.plane_words
    );
    demand!(
        n,
        cert.census.cache_words == sum_cache,
        K::CensusTotals,
        "total cache DMA words {} != per-instruction sum {sum_cache}",
        cert.census.cache_words
    );

    // Per-instruction capacity obligations.
    for row in &cert.census.instructions {
        let at = row.index;
        // V006 — units fit the machine.
        demand!(
            n,
            row.active_fus <= m.fu_count,
            K::FuCensusBound,
            "instruction {at}: {} active FUs exceed the machine's {}",
            row.active_fus,
            m.fu_count
        );
        // V007/V008 — SDU taps and delays.
        let instr_taps: u32 = row.sdu.iter().map(|s| s.taps).sum();
        demand!(
            n,
            instr_taps <= m.max_sdu_taps,
            K::SduTapBound,
            "instruction {at}: {instr_taps} SDU taps exceed the budget of {}",
            m.max_sdu_taps
        );
        for s in &row.sdu {
            demand!(
                n,
                s.unit < m.sdu_units && s.taps <= m.sdu_taps_per_unit,
                K::SduTapBound,
                "instruction {at}: SDU unit {} uses {} taps (limit {} units x {} taps)",
                s.unit,
                s.taps,
                m.sdu_units,
                m.sdu_taps_per_unit
            );
            demand!(
                n,
                s.max_delay < m.sdu_buffer_words,
                K::SduDelayBound,
                "instruction {at}: SDU unit {} delay {} overruns the {}-word buffer",
                s.unit,
                s.max_delay,
                m.sdu_buffer_words
            );
        }
        // V009 — plane DMA spans stay inside the plane.
        for p in &row.planes {
            demand!(
                n,
                (p.plane < m.planes)
                    && p.lo <= p.hi
                    && p.hi < m.words_per_plane
                    && p.words >= 1
                    && p.words <= p.hi - p.lo + 1,
                K::PlaneDmaBound,
                "instruction {at}: plane {} span [{}, {}] x {} words escapes the \
                 {}-word plane",
                p.plane,
                p.lo,
                p.hi,
                p.words,
                m.words_per_plane
            );
        }
        // V010 — cache DMA spans stay inside one buffer.
        for c in &row.caches {
            demand!(
                n,
                (c.cache < m.caches)
                    && (c.buffer < m.cache_buffers)
                    && c.lo <= c.hi
                    && c.hi < m.cache_words_per_buffer
                    && c.words >= 1
                    && c.words <= c.hi - c.lo + 1,
                K::CacheDmaBound,
                "instruction {at}: cache {} buffer {} span [{}, {}] x {} words escapes \
                 the {}-word buffer",
                c.cache,
                c.buffer,
                c.lo,
                c.hi,
                c.words,
                m.cache_words_per_buffer
            );
        }
    }

    // V011 — kernel windows: the claimed work fits the active units over
    // the claimed cycles.
    for w in &cert.windows {
        let row = cert
            .census
            .instructions
            .iter()
            .find(|r| r.index == w.index)
            .expect("checked under V004");
        demand!(
            n,
            w.flops == 0 || w.executed_cycles > 0,
            K::FlopWindowBound,
            "instruction {}: {} flops claimed in a zero-cycle window",
            w.index,
            w.flops
        );
        demand!(
            n,
            w.flops <= row.active_fus as u64 * w.executed_cycles,
            K::FlopWindowBound,
            "instruction {}: {} flops exceed {} units x {} cycles",
            w.index,
            w.flops,
            row.active_fus,
            w.executed_cycles
        );
        // One word per port per cycle: the streams cannot outrun the
        // machine's plane + cache ports over the window.
        let ports = (m.planes + m.caches) as u64;
        demand!(
            n,
            w.stored <= ports * w.executed_cycles && w.streamed <= ports * w.executed_cycles,
            K::FlopWindowBound,
            "instruction {}: streamed {} / stored {} exceed {ports} ports x {} cycles",
            w.index,
            w.streamed,
            w.stored,
            w.executed_cycles
        );
    }

    // Routing obligations, re-deriving the e-cube law independently.
    for r in &cert.routes {
        // V012 — the path starts and ends at the claimed endpoints.
        demand!(
            n,
            r.path.first() == Some(&r.from) && r.path.last() == Some(&r.to),
            K::RouteEndpoints,
            "route {} -> {}: path {:?} does not join its endpoints",
            r.from,
            r.to,
            r.path
        );
        // V013 — exactly Hamming-distance hops, each flipping one bit.
        let hamming = (r.from ^ r.to).count_ones() as usize;
        demand!(
            n,
            r.path.len() == hamming + 1,
            K::RouteMinimal,
            "route {} -> {}: {} hops claimed, Hamming distance is {hamming}",
            r.from,
            r.to,
            r.path.len().saturating_sub(1)
        );
        let mut prev_dim: Option<u32> = None;
        for pair in r.path.windows(2) {
            let diff = pair[0] ^ pair[1];
            demand!(
                n,
                diff.count_ones() == 1,
                K::RouteMinimal,
                "route {} -> {}: step {} -> {} flips {} bits",
                r.from,
                r.to,
                pair[0],
                pair[1],
                diff.count_ones()
            );
            // V014 — e-cube: dimensions corrected lowest-bit-first.
            let dim = diff.trailing_zeros();
            demand!(
                n,
                prev_dim.is_none_or(|p| dim > p),
                K::RouteEcubeOrder,
                "route {} -> {}: dimension {dim} corrected after dimension {:?}",
                r.from,
                r.to,
                prev_dim
            );
            prev_dim = Some(dim);
        }
        // V015 — leased jobs stay inside their sub-cube.
        if let Some(lease) = &cert.lease {
            demand!(
                n,
                lease.dimension < 64 && lease.base.is_multiple_of(1u64 << lease.dimension),
                K::RouteContainment,
                "lease base {} is not aligned to a dimension-{} sub-cube",
                lease.base,
                lease.dimension
            );
            let size = 1u64 << lease.dimension;
            for &node in &r.path {
                demand!(
                    n,
                    node < size,
                    K::RouteContainment,
                    "route {} -> {}: node {node} escapes the {size}-node lease",
                    r.from,
                    r.to
                );
            }
        }
    }

    // V016 — coverage: each part's windows tile its owned layers
    // exactly once.
    for cov in &cert.coverage {
        let mut spans: Vec<(u64, u64)> = cov.windows.iter().map(|w| (w.start, w.len)).collect();
        spans.sort_unstable();
        let mut cursor = cov.owned_start;
        for (start, len) in &spans {
            demand!(
                n,
                *start == cursor && *len > 0,
                K::CoverageTiling,
                "part {}: window [{start}, {}) leaves a gap or overlap at layer {cursor}",
                cov.part,
                start + len
            );
            cursor = start + len;
        }
        demand!(
            n,
            cursor == cov.owned_start + cov.owned_len,
            K::CoverageTiling,
            "part {}: windows cover up to layer {cursor}, owned span ends at {}",
            cov.part,
            cov.owned_start + cov.owned_len
        );
    }

    Ok(VerifyReport { obligations: n })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::*;

    fn machine() -> MachineLimits {
        MachineLimits {
            fu_count: 32,
            planes: 16,
            words_per_plane: 1 << 24,
            caches: 16,
            cache_buffers: 2,
            cache_words_per_buffer: 8192,
            sdu_units: 2,
            sdu_taps_per_unit: 4,
            sdu_buffer_words: 16384,
            max_sdu_taps: 8,
            rf_words: 64,
            clock_hz: 20_000_000,
        }
    }

    fn honest() -> CompileCertificate {
        CompileCertificate {
            doc_digest: digest_hex(0xabc),
            shape_digest: digest_hex(0xdef),
            compile_path: CompilePath::Full,
            machine: machine(),
            census: ResourceCensus {
                instructions: vec![InstrCensus {
                    index: 0,
                    active_fus: 3,
                    sdu: vec![SduUse { unit: 0, taps: 2, max_delay: 9 }],
                    planes: vec![PlaneSpan { plane: 0, lo: 0, hi: 511, words: 512, write: false }],
                    caches: vec![CacheSpan {
                        cache: 0,
                        buffer: 0,
                        lo: 0,
                        hi: 0,
                        words: 1,
                        write: true,
                    }],
                }],
                active_fus: 3,
                sdu_taps: 2,
                plane_words: 512,
                cache_words: 1,
            },
            windows: vec![KernelWindow {
                index: 0,
                executed_cycles: 512,
                flops: 1024,
                streamed: 512,
                stored: 512,
            }],
            routes: vec![RouteCert { from: 0, to: 3, words: 64, path: vec![0, 1, 3] }],
            coverage: vec![CoverageCert {
                part: 0,
                node: 0,
                owned_start: 1,
                owned_len: 4,
                windows: vec![
                    WindowSpan { start: 1, len: 1, slot: 1 },
                    WindowSpan { start: 2, len: 2, slot: 0 },
                    WindowSpan { start: 4, len: 1, slot: 2 },
                ],
            }],
            lease: Some(LeaseCert { base: 8, dimension: 2 }),
            seal: String::new(),
        }
        .sealed()
    }

    #[test]
    fn honest_certificate_verifies() {
        let report = verify(&honest(), &Expected::default()).expect("honest cert accepted");
        assert!(report.obligations > 20, "many obligations discharged: {report:?}");
    }

    #[test]
    fn expected_digests_bind() {
        let cert = honest();
        let ok = Expected {
            doc_digest: Some(digest_hex(0xabc)),
            shape_digest: Some(digest_hex(0xdef)),
            machine: Some(machine()),
        };
        verify(&cert, &ok).expect("matching expectations accepted");
        let bad = Expected { doc_digest: Some(digest_hex(0x999)), ..Default::default() };
        let v = verify(&cert, &bad).unwrap_err();
        assert_eq!(v.kind, ConstraintKind::DocDigestBinding);
    }

    #[test]
    fn unsealed_mutation_is_rejected() {
        let mut cert = honest();
        cert.windows[0].flops += 1;
        let v = verify(&cert, &Expected::default()).unwrap_err();
        assert_eq!(v.kind, ConstraintKind::SealIntegrity);
    }

    #[test]
    fn resealed_overcommit_is_rejected() {
        let mut cert = honest();
        cert.census.instructions[0].active_fus = 33;
        cert.census.active_fus = 33;
        let v = verify(&cert.sealed(), &Expected::default()).unwrap_err();
        assert_eq!(v.kind, ConstraintKind::FuCensusBound);
    }

    #[test]
    fn resealed_total_mismatch_is_rejected() {
        let mut cert = honest();
        cert.census.sdu_taps = 5;
        let v = verify(&cert.sealed(), &Expected::default()).unwrap_err();
        assert_eq!(v.kind, ConstraintKind::CensusTotals);
    }

    #[test]
    fn non_ecube_route_is_rejected() {
        let mut cert = honest();
        // 0 -> 2 -> 3 corrects dimension 1 before dimension 0.
        cert.routes[0].path = vec![0, 2, 3];
        let v = verify(&cert.sealed(), &Expected::default()).unwrap_err();
        assert_eq!(v.kind, ConstraintKind::RouteEcubeOrder);
    }

    #[test]
    fn detour_route_is_rejected() {
        let mut cert = honest();
        cert.routes[0].path = vec![0, 1, 0, 1, 3];
        let v = verify(&cert.sealed(), &Expected::default()).unwrap_err();
        assert_eq!(v.kind, ConstraintKind::RouteMinimal);
    }

    #[test]
    fn lease_escape_is_rejected() {
        let mut cert = honest();
        cert.lease = Some(LeaseCert { base: 8, dimension: 1 });
        let v = verify(&cert.sealed(), &Expected::default()).unwrap_err();
        assert_eq!(v.kind, ConstraintKind::RouteContainment, "node 3 escapes a 2-node lease");
    }

    #[test]
    fn coverage_gap_and_overlap_are_rejected() {
        let mut cert = honest();
        cert.coverage[0].windows[1].len = 1; // gap at layer 3
        let v = verify(&cert.clone().sealed(), &Expected::default()).unwrap_err();
        assert_eq!(v.kind, ConstraintKind::CoverageTiling);
        cert.coverage[0].windows[1].len = 3; // overlap at layer 4
        let v = verify(&cert.sealed(), &Expected::default()).unwrap_err();
        assert_eq!(v.kind, ConstraintKind::CoverageTiling);
    }
}
