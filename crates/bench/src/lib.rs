//! Shared measurement helpers for the criterion benches and the CI
//! performance gate (`perf_gate`).
//!
//! Everything here reports **simulated** figures (cycle counters and the
//! router model), which are bit-deterministic across host machines — that
//! is what makes the CI regression gate flake-free: a >20% drop in
//! simulated MFLOPS is a real modelling or codegen regression, never a
//! noisy runner.

use nsc_cfd::grid::manufactured_problem;
use nsc_cfd::nsc_run::run_jacobi_on_node;
use nsc_cfd::{
    CavityWorkload, DistributedJacobiWorkload, DistributedMultigridWorkload, JacobiVariant,
    MgOptions,
};
use nsc_core::{Session, Workload};
use nsc_sim::{NodeSim, NscSystem};
use serde::{Deserialize, Serialize};

/// One strong-scaling measurement.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Hypercube size.
    pub nodes: usize,
    /// Aggregate achieved MFLOPS (compute + halo + reduction time).
    pub aggregate_mflops: f64,
    /// Simulated seconds of the run (slowest node).
    pub simulated_seconds: f64,
}

/// Run the distributed Jacobi workload for a fixed number of ping-pong
/// pairs on a `2^dim`-node cube and report the simulated aggregate rate.
/// `overlap` runs the latency-hidden sweep engine instead of the
/// synchronized compute-then-exchange loop.
pub fn strong_scaling_point(dim: u32, n: usize, pairs: u32, overlap: bool) -> ScalingPoint {
    let session = Session::nsc_1988();
    let mut sys = NscSystem::new(nsc_arch::HypercubeConfig::new(dim), session.kb());
    let (u0, f, _) = manufactured_problem(n);
    let w = DistributedJacobiWorkload {
        u0,
        f,
        tol: 0.0,
        max_pairs: pairs,
        partition: nsc_cfd::PartitionSpec::Strip,
        overlap,
    };
    let run = w.execute(&session, &mut sys).expect("distributed jacobi runs");
    ScalingPoint {
        nodes: sys.node_count(),
        aggregate_mflops: run.aggregate_mflops,
        simulated_seconds: run.simulated_seconds,
    }
}

/// Single-node achieved MFLOPS of the serial Jacobi document (one
/// ping-pong pair on an `n^3` grid) — the E10 figure the gate tracks.
pub fn jacobi_node_mflops(n: usize) -> f64 {
    let (u0, f, _) = manufactured_problem(n);
    let mut node = NodeSim::nsc_1988();
    run_jacobi_on_node(&mut node, &u0, &f, 0.0, 1, JacobiVariant::Full).expect("jacobi runs").mflops
}

/// One lid-driven-cavity measurement: simulated time per machine-resident
/// time step (ψ-Poisson solve plus FTCS vorticity transport) at a fixed
/// step count, and the aggregate rate.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CavityPoint {
    /// Hypercube size.
    pub nodes: usize,
    /// Simulated seconds per time step (slowest node, compute + comm).
    pub seconds_per_step: f64,
    /// Aggregate achieved MFLOPS of the run.
    pub aggregate_mflops: f64,
}

/// Run the cavity for a fixed number of time steps on a `2^dim`-node cube
/// and report the simulated time per step. Deterministic: the per-step
/// ψ-solve sweep counts are fixed by the (simulated) convergence history.
pub fn cavity_point(dim: u32, n: usize, steps: usize, overlap: bool) -> CavityPoint {
    let session = Session::nsc_1988();
    let mut sys = NscSystem::new(nsc_arch::HypercubeConfig::new(dim), session.kb());
    let mut w = CavityWorkload::new(n, 50.0, steps);
    w.psi_tol = 1e-6;
    w.overlap = overlap;
    let run = w.execute(&session, &mut sys).expect("cavity runs");
    CavityPoint {
        nodes: sys.node_count(),
        seconds_per_step: run.simulated_seconds / steps as f64,
        aggregate_mflops: run.aggregate_mflops,
    }
}

/// Run the distributed multigrid workload for a fixed number of V-cycles
/// on a `2^dim`-node cube and report the simulated aggregate rate.
/// `overlap` hides the smoother's halo exchanges under interior compute.
pub fn multigrid_point(dim: u32, n: usize, cycles: usize, overlap: bool) -> ScalingPoint {
    let session = Session::nsc_1988();
    let mut sys = NscSystem::new(nsc_arch::HypercubeConfig::new(dim), session.kb());
    let (u0, f, _) = manufactured_problem(n);
    let w = DistributedMultigridWorkload {
        u0,
        f,
        tol: 0.0,
        max_cycles: cycles,
        opts: MgOptions::default(),
        overlap,
    };
    let run = w.execute(&session, &mut sys).expect("distributed multigrid runs");
    ScalingPoint {
        nodes: sys.node_count(),
        aggregate_mflops: run.aggregate_mflops,
        simulated_seconds: run.simulated_seconds,
    }
}

/// Host-side (wall-clock) figures for the compiled-kernel fast path
/// against the interpreter on the same workload. Unlike every other
/// figure in this crate these depend on the machine running them, so the
/// gate never compares them against a committed baseline — it only
/// enforces the freshly measured kernel-vs-interpreter speedup, which is
/// a property of the code, not of the host.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HostPoint {
    /// Hypercube size.
    pub nodes: usize,
    /// Simulated flops the workload executes (identical on both paths).
    pub flops: u64,
    /// Host wall-clock seconds with kernel specialization (the default).
    pub host_seconds_kernel: f64,
    /// Host wall-clock seconds with the fast path disabled.
    pub host_seconds_interpreted: f64,
    /// Simulated flops per host second through the kernels.
    pub host_mflops_kernel: f64,
    /// Simulated flops per host second through the interpreter.
    pub host_mflops_interpreted: f64,
    /// `host_seconds_interpreted / host_seconds_kernel`.
    pub kernel_speedup: f64,
}

/// Measure the distributed Jacobi workload's host wall-clock on both
/// execution paths (best of `reps` runs each) and cross-check that the
/// two paths simulate identical work: same counters, same residual bits.
pub fn host_comparison_point(dim: u32, n: usize, pairs: u32, reps: usize) -> HostPoint {
    let run_once = |fast: bool| {
        let session =
            if fast { Session::nsc_1988() } else { Session::nsc_1988().with_fast_path(false) };
        let mut sys = NscSystem::new(nsc_arch::HypercubeConfig::new(dim), session.kb());
        let (u0, f, _) = manufactured_problem(n);
        let w = DistributedJacobiWorkload {
            u0,
            f,
            tol: 0.0,
            max_pairs: pairs,
            partition: nsc_cfd::PartitionSpec::Strip,
            overlap: false,
        };
        let start = std::time::Instant::now();
        let run = w.execute(&session, &mut sys).expect("distributed jacobi runs");
        (start.elapsed().as_secs_f64(), run)
    };
    let reps = reps.max(1);
    let (mut kernel_secs, kernel_run) = run_once(true);
    let (mut interp_secs, interp_run) = run_once(false);
    for _ in 1..reps {
        kernel_secs = kernel_secs.min(run_once(true).0);
        interp_secs = interp_secs.min(run_once(false).0);
    }
    // The fast path may only change wall-clock: identical simulated work
    // is its contract, and the gate double-checks it on every run.
    assert_eq!(kernel_run.total, interp_run.total, "kernel and interpreter counters diverged");
    assert_eq!(
        kernel_run.residual.to_bits(),
        interp_run.residual.to_bits(),
        "kernel and interpreter residuals diverged"
    );
    let flops = kernel_run.total.flops;
    HostPoint {
        nodes: 1 << dim,
        flops,
        host_seconds_kernel: kernel_secs,
        host_seconds_interpreted: interp_secs,
        host_mflops_kernel: flops as f64 / kernel_secs / 1.0e6,
        host_mflops_interpreted: flops as f64 / interp_secs / 1.0e6,
        kernel_speedup: interp_secs / kernel_secs,
    }
}

/// One machine-park scheduling measurement: the aggregate figures of a
/// deterministic job stream under one policy.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ParkPoint {
    /// Machine size in nodes.
    pub nodes: usize,
    /// Jobs completed.
    pub jobs: usize,
    /// Busy node-seconds over capacity node-seconds.
    pub utilization: f64,
    /// Jobs per simulated second (scheduler throughput).
    pub jobs_per_second: f64,
    /// Simulated seconds from first arrival to last completion.
    pub makespan: f64,
}

fn park_point_from(report: &nsc_park::ParkReport) -> ParkPoint {
    ParkPoint {
        nodes: report.capacity_nodes,
        jobs: report.jobs.len(),
        utilization: report.utilization,
        jobs_per_second: report.jobs_per_second,
        makespan: report.makespan,
    }
}

/// A fixed-length distributed Jacobi payload (tolerance zero, exactly
/// `pairs` ping-pong pairs) — deterministic duration for the park mixes.
fn fixed_jacobi(n: usize, pairs: u32) -> DistributedJacobiWorkload {
    let (u0, f, _) = manufactured_problem(n);
    DistributedJacobiWorkload {
        u0,
        f,
        tol: 0.0,
        max_pairs: pairs,
        partition: nsc_cfd::PartitionSpec::Auto,
        overlap: false,
    }
}

/// The benchmark job mix the scheduler baselines are committed against,
/// run on a 4-node park under `policy`: a 2-node job starts first, a
/// whole-machine multigrid job blocks the queue behind it, and a stream
/// of 1-node jobs waits behind *that* — runnable immediately on the two
/// idle nodes, but only by a policy willing to look past the blocked
/// head. Deterministic, so the figures gate against a committed
/// baseline.
pub fn park_mixed_point(policy: nsc_park::SchedPolicy) -> ParkPoint {
    use nsc_park::Job;
    let mut park = nsc_park::MachinePark::new(Session::nsc_1988(), 2);
    park.submit(Job::new("ada", 1, fixed_jacobi(8, 40))).expect("fits");
    let (u0, f, _) = manufactured_problem(17);
    let mg = DistributedMultigridWorkload {
        u0,
        f,
        tol: 0.0,
        max_cycles: 2,
        opts: MgOptions::default(),
        overlap: false,
    };
    park.submit(Job::new("mary", 2, mg)).expect("fits");
    for _ in 0..4 {
        park.submit(Job::new("grace", 0, fixed_jacobi(6, 10))).expect("fits");
    }
    park_point_from(&park.run(policy).expect("park mix runs"))
}

/// Saturation throughput of the small-job stream: a 4-node park fed
/// twelve 1-node jobs under backfill, every node busy end to end — the
/// jobs-per-second figure the gate tracks as scheduler throughput.
pub fn park_small_stream_point() -> ParkPoint {
    use nsc_park::Job;
    let mut park = nsc_park::MachinePark::new(Session::nsc_1988(), 2);
    for i in 0..12 {
        let tenant = ["ada", "grace", "mary"][i % 3];
        park.submit(Job::new(tenant, 0, fixed_jacobi(6, 10))).expect("fits");
    }
    park_point_from(&park.run(nsc_park::SchedPolicy::Backfill).expect("park stream runs"))
}

/// One ensemble-engine measurement: a parameter sweep batched over the
/// park, with the compile-cache economics that motivate the layer.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EnsemblePoint {
    /// Sweep members.
    pub members: usize,
    /// Members per simulated second with the 4-node park saturated by
    /// 1-node members (the ensemble throughput figure the gate tracks).
    pub members_per_second: f64,
    /// Park utilization over the saturated run.
    pub utilization: f64,
    /// Compile-cache hit rate over a serial run of the same sweep —
    /// full hits plus preload rebinds over all compiles. Measured on a
    /// 1-node park so the counters are deterministic (concurrent leases
    /// can race to first-compile a shape, which never changes results
    /// but does perturb the counters).
    pub cache_hit_rate: f64,
    /// Compiles the serial run asked for (hits + rebinds + misses).
    pub compiles: u64,
}

/// The benchmark sweep the ensemble baselines are committed against: a
/// 12-member Reynolds×ω lid-driven-cavity study on the 9^2 grid. The
/// FTCS coefficients are document constants, so every member past the
/// first is served by the session cache — ψ-solver programs as full
/// digest hits, transport programs as preload rebinds per distinct
/// (Re, dt).
fn ensemble_sweep() -> nsc_ensemble::Sweep {
    nsc_ensemble::Sweep::new("bench cavity study")
        .axis("re", [1.0, 5.0, 20.0, 80.0, 200.0, 500.0])
        .axis("steps", [1.0, 2.0])
}

fn ensemble_member(point: &nsc_ensemble::ParamPoint) -> Result<nsc_park::Job, nsc_core::NscError> {
    let w = CavityWorkload::new(9, point.value("re"), point.value("steps") as usize);
    Ok(nsc_park::Job::new("study", 0, w))
}

/// Measure the committed ensemble figures: saturated throughput on the
/// 4-node park, cache economics on a serial park.
pub fn ensemble_point() -> EnsemblePoint {
    let sweep = ensemble_sweep();
    let mut saturated = nsc_park::MachinePark::new(Session::nsc_1988(), 2);
    let fast = sweep
        .run(&mut saturated, nsc_park::SchedPolicy::Backfill, ensemble_member)
        .expect("saturated ensemble runs");
    let mut serial = nsc_park::MachinePark::new(Session::nsc_1988(), 0);
    let counted = sweep
        .run(&mut serial, nsc_park::SchedPolicy::Fifo, ensemble_member)
        .expect("serial ensemble runs");
    let cache = &counted.cache;
    EnsemblePoint {
        members: fast.members.len(),
        members_per_second: fast.members_per_second,
        utilization: fast.utilization,
        cache_hit_rate: cache.hit_rate(),
        compiles: cache.hits + cache.rebinds + cache.misses,
    }
}

/// One certificate-audit measurement: how fast the independent verifier
/// re-checks a run's certificates, against how long the run itself took.
/// Host wall-clock, so the committed copy is informational — the gate
/// enforces the freshly measured `audit_speedup` floor, which is a
/// property of the code (verifying is hashing plus interval arithmetic;
/// re-running is a full simulation), not of the runner.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CertPoint {
    /// Certificates the gate workload emitted.
    pub certs: usize,
    /// Obligations one full audit pass discharges across those
    /// certificates.
    pub obligations: usize,
    /// Certificates verified per host second.
    pub certs_per_second: f64,
    /// Workload wall-clock over one full audit pass's wall-clock: how
    /// many times cheaper auditing a run is than re-running it.
    pub audit_speedup: f64,
}

/// Measure the certificate verifier's throughput: run the distributed
/// Jacobi gate workload once through the park (wall-clock), then
/// repeatedly verify its full certificate set and time a pass.
pub fn cert_audit_point() -> CertPoint {
    use nsc_park::Job;
    let mut park = nsc_park::MachinePark::new(Session::nsc_1988(), 2);
    park.submit(Job::new("audit", 2, fixed_jacobi(16, 10))).expect("fits");
    let start = std::time::Instant::now();
    park.run(nsc_park::SchedPolicy::Fifo).expect("audit workload runs");
    let run_seconds = start.elapsed().as_secs_f64();
    let certs = park.outcome(0).expect("outcome kept").certificates.clone();
    let expected = nsc_cert::Expected {
        machine: Some(nsc_core::certify::machine_limits(park.session().kb().config())),
        ..Default::default()
    };
    let passes = 50u32;
    let mut obligations = 0usize;
    let start = std::time::Instant::now();
    for _ in 0..passes {
        obligations = certs
            .iter()
            .map(|c| nsc_cert::verify(c, &expected).expect("honest certificates").obligations)
            .sum();
    }
    let pass_seconds = start.elapsed().as_secs_f64() / passes as f64;
    CertPoint {
        certs: certs.len(),
        obligations,
        certs_per_second: certs.len() as f64 / pass_seconds,
        audit_speedup: run_seconds / pass_seconds,
    }
}

/// The benches honour `NSC_BENCH_QUICK` (set by the CI gate job) by
/// cutting the sample count: wall-clock statistics are not what CI
/// checks, the simulated figures are.
pub fn sample_size(full: usize) -> usize {
    if std::env::var_os("NSC_BENCH_QUICK").is_some() {
        2
    } else {
        full
    }
}
