//! Shared measurement helpers for the criterion benches and the CI
//! performance gate (`perf_gate`).
//!
//! Everything here reports **simulated** figures (cycle counters and the
//! router model), which are bit-deterministic across host machines — that
//! is what makes the CI regression gate flake-free: a >20% drop in
//! simulated MFLOPS is a real modelling or codegen regression, never a
//! noisy runner.

use nsc_cfd::grid::manufactured_problem;
use nsc_cfd::nsc_run::run_jacobi_on_node;
use nsc_cfd::{
    CavityWorkload, DistributedJacobiWorkload, DistributedMultigridWorkload, JacobiVariant,
    MgOptions,
};
use nsc_core::{Session, Workload};
use nsc_sim::{NodeSim, NscSystem};
use serde::{Deserialize, Serialize};

/// One strong-scaling measurement.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Hypercube size.
    pub nodes: usize,
    /// Aggregate achieved MFLOPS (compute + halo + reduction time).
    pub aggregate_mflops: f64,
    /// Simulated seconds of the run (slowest node).
    pub simulated_seconds: f64,
}

/// Run the distributed Jacobi workload for a fixed number of ping-pong
/// pairs on a `2^dim`-node cube and report the simulated aggregate rate.
/// `overlap` runs the latency-hidden sweep engine instead of the
/// synchronized compute-then-exchange loop.
pub fn strong_scaling_point(dim: u32, n: usize, pairs: u32, overlap: bool) -> ScalingPoint {
    let session = Session::nsc_1988();
    let mut sys = NscSystem::new(nsc_arch::HypercubeConfig::new(dim), session.kb());
    let (u0, f, _) = manufactured_problem(n);
    let w = DistributedJacobiWorkload {
        u0,
        f,
        tol: 0.0,
        max_pairs: pairs,
        partition: nsc_cfd::PartitionSpec::Strip,
        overlap,
    };
    let run = w.execute(&session, &mut sys).expect("distributed jacobi runs");
    ScalingPoint {
        nodes: sys.node_count(),
        aggregate_mflops: run.aggregate_mflops,
        simulated_seconds: run.simulated_seconds,
    }
}

/// Single-node achieved MFLOPS of the serial Jacobi document (one
/// ping-pong pair on an `n^3` grid) — the E10 figure the gate tracks.
pub fn jacobi_node_mflops(n: usize) -> f64 {
    let (u0, f, _) = manufactured_problem(n);
    let mut node = NodeSim::nsc_1988();
    run_jacobi_on_node(&mut node, &u0, &f, 0.0, 1, JacobiVariant::Full).expect("jacobi runs").mflops
}

/// One lid-driven-cavity measurement: simulated time per machine-resident
/// time step (ψ-Poisson solve plus FTCS vorticity transport) at a fixed
/// step count, and the aggregate rate.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CavityPoint {
    /// Hypercube size.
    pub nodes: usize,
    /// Simulated seconds per time step (slowest node, compute + comm).
    pub seconds_per_step: f64,
    /// Aggregate achieved MFLOPS of the run.
    pub aggregate_mflops: f64,
}

/// Run the cavity for a fixed number of time steps on a `2^dim`-node cube
/// and report the simulated time per step. Deterministic: the per-step
/// ψ-solve sweep counts are fixed by the (simulated) convergence history.
pub fn cavity_point(dim: u32, n: usize, steps: usize, overlap: bool) -> CavityPoint {
    let session = Session::nsc_1988();
    let mut sys = NscSystem::new(nsc_arch::HypercubeConfig::new(dim), session.kb());
    let mut w = CavityWorkload::new(n, 50.0, steps);
    w.psi_tol = 1e-6;
    w.overlap = overlap;
    let run = w.execute(&session, &mut sys).expect("cavity runs");
    CavityPoint {
        nodes: sys.node_count(),
        seconds_per_step: run.simulated_seconds / steps as f64,
        aggregate_mflops: run.aggregate_mflops,
    }
}

/// Run the distributed multigrid workload for a fixed number of V-cycles
/// on a `2^dim`-node cube and report the simulated aggregate rate.
/// `overlap` hides the smoother's halo exchanges under interior compute.
pub fn multigrid_point(dim: u32, n: usize, cycles: usize, overlap: bool) -> ScalingPoint {
    let session = Session::nsc_1988();
    let mut sys = NscSystem::new(nsc_arch::HypercubeConfig::new(dim), session.kb());
    let (u0, f, _) = manufactured_problem(n);
    let w = DistributedMultigridWorkload {
        u0,
        f,
        tol: 0.0,
        max_cycles: cycles,
        opts: MgOptions::default(),
        overlap,
    };
    let run = w.execute(&session, &mut sys).expect("distributed multigrid runs");
    ScalingPoint {
        nodes: sys.node_count(),
        aggregate_mflops: run.aggregate_mflops,
        simulated_seconds: run.simulated_seconds,
    }
}

/// The benches honour `NSC_BENCH_QUICK` (set by the CI gate job) by
/// cutting the sample count: wall-clock statistics are not what CI
/// checks, the simulated figures are.
pub fn sample_size(full: usize) -> usize {
    if std::env::var_os("NSC_BENCH_QUICK").is_some() {
        2
    } else {
        full
    }
}
