//! placeholder — implemented later in the build sequence.
