//! The CI performance-regression gate.
//!
//! Measures the *simulated* performance figures (bit-deterministic across
//! host machines: cycle counters plus the pinned router model), writes
//! them as JSON, and compares against the committed baseline, failing when
//! any figure drops more than 20%.
//!
//! The one exception to "simulated figures only" is the `host` section:
//! wall-clock measurements of the compiled-kernel fast path against the
//! interpreter. Those are machine-dependent, so the baseline copy is
//! informational; the gate instead enforces the *freshly measured*
//! kernel-vs-interpreter speedup (a property of the code, not the host).
//!
//! ```text
//! perf_gate --write out.json                        # emit current figures
//! perf_gate --check crates/bench/BENCH_baseline.json [--write out.json]
//! perf_gate --write-baseline                        # refresh the committed baseline
//! perf_gate --check ... --summary summary.md        # append a markdown table
//! ```

use nsc_bench::{
    cavity_point, cert_audit_point, ensemble_point, host_comparison_point, jacobi_node_mflops,
    multigrid_point, park_mixed_point, park_small_stream_point, strong_scaling_point, CavityPoint,
    CertPoint, EnsemblePoint, HostPoint, ParkPoint, ScalingPoint,
};
use nsc_park::SchedPolicy;
use serde::{Deserialize, Serialize};
use std::process::ExitCode;

/// Where the committed baseline lives (relative to the repo root, which
/// is where CI and `cargo run` invoke the gate from).
const BASELINE_PATH: &str = "crates/bench/BENCH_baseline.json";

/// The committed-and-compared figure set.
#[derive(Debug, Serialize, Deserialize)]
struct Baseline {
    /// Serial E10 figure: one ping-pong pair on the 12^3 grid.
    jacobi_mflops: f64,
    /// Distributed Jacobi on 64^3, one pair, at 1/2/4/8 nodes.
    strong_scaling: Vec<ScalingPoint>,
    /// Lid-driven cavity, 17^2, two machine-resident time steps, at 1/4
    /// nodes (time per step; the gate tracks the step rate).
    cavity: Vec<CavityPoint>,
    /// Distributed multigrid on 17^3, two V-cycles, at 1/4/8 nodes.
    multigrid: Vec<ScalingPoint>,
    /// Distributed Jacobi 64^3 at 8 nodes through the *overlapped* sweep
    /// engine (halo exchange hidden under interior compute). The gate
    /// asserts this is strictly faster than the synchronized 8-node run.
    jacobi_overlap_8: ScalingPoint,
    /// Distributed multigrid 17^3 at 8 nodes, overlapped smoothing; same
    /// strictly-faster-than-synchronized assertion.
    multigrid_overlap_8: ScalingPoint,
    /// The machine-park benchmark job mix (4-node park: a running 2-node
    /// job, a blocked whole-machine job, a 1-node stream behind it)
    /// under plain FIFO — the reference backfill must beat.
    park_fifo: ParkPoint,
    /// The same mix under backfill. The gate asserts backfill strictly
    /// beats FIFO on utilization AND throughput, and gates both figures
    /// against this baseline.
    park_backfill: ParkPoint,
    /// Twelve 1-node jobs saturating the 4-node park: the scheduler's
    /// small-job-stream throughput (jobs per simulated second) and the
    /// park utilization figure the gate holds at its committed floor.
    park_small_stream: ParkPoint,
    /// The ensemble engine's benchmark sweep (12-member Reynolds×steps
    /// cavity study): members/second with the 4-node park saturated,
    /// plus the compile-cache hit rate of a serial run — the gate holds
    /// the rate at an absolute floor on top of the relative gates.
    ensemble: EnsemblePoint,
    /// Host wall-clock of the kernel fast path vs the interpreter on
    /// Jacobi 64^3 @ 8 nodes. Machine-dependent, so the committed copy is
    /// informational only — the gate enforces the freshly measured
    /// speedup, never a comparison against this snapshot.
    host: HostPoint,
    /// Certificate-audit throughput: the independent verifier re-checking
    /// the Jacobi gate workload's certificates. Host wall-clock like
    /// `host`, so the committed copy is informational — the gate enforces
    /// the freshly measured audit speedup (auditing must be orders of
    /// magnitude cheaper than re-running).
    cert: CertPoint,
}

/// Simulated figures never flake, but they may legitimately improve; only
/// a drop beyond this fraction fails the gate.
const TOLERATED_DROP: f64 = 0.20;

/// The kernel fast path must beat the interpreter's host wall-clock by at
/// least this factor on the gate workload (Jacobi 64^3 @ 8 nodes).
const REQUIRED_KERNEL_SPEEDUP: f64 = 3.0;

/// On the benchmark ensemble sweep, at least this fraction of compiles
/// must be served from the session cache (full digest hits plus preload
/// rebinds): compile-once is the ensemble layer's contract.
const ENSEMBLE_HIT_RATE_FLOOR: f64 = 0.9;

/// Auditing a run's certificates must be at least this many times
/// cheaper than re-running the workload — the economic premise of the
/// spot-audit policy. Conservative: the measured ratio is typically in
/// the thousands.
const REQUIRED_AUDIT_SPEEDUP: f64 = 10.0;

fn measure() -> Baseline {
    Baseline {
        jacobi_mflops: jacobi_node_mflops(12),
        strong_scaling: (0..=3u32).map(|dim| strong_scaling_point(dim, 64, 1, false)).collect(),
        cavity: [0u32, 2].iter().map(|&dim| cavity_point(dim, 17, 2, false)).collect(),
        multigrid: [0u32, 2, 3].iter().map(|&dim| multigrid_point(dim, 17, 2, false)).collect(),
        jacobi_overlap_8: strong_scaling_point(3, 64, 1, true),
        multigrid_overlap_8: multigrid_point(3, 17, 2, true),
        park_fifo: park_mixed_point(SchedPolicy::Fifo),
        park_backfill: park_mixed_point(SchedPolicy::Backfill),
        park_small_stream: park_small_stream_point(),
        ensemble: ensemble_point(),
        // Four pairs so the streamed sweeps, not compilation and problem
        // scatter (which both paths share), dominate the wall-clock.
        host: host_comparison_point(3, 64, 4, 2),
        cert: cert_audit_point(),
    }
}

fn check(current: &Baseline, baseline: &Baseline) -> Result<(), String> {
    let mut failures = Vec::new();
    let mut gate = |name: String, now: f64, then: f64, unit: &str| {
        let floor = then * (1.0 - TOLERATED_DROP);
        let verdict = if now >= floor { "ok" } else { "REGRESSED" };
        eprintln!(
            "  {name:<32} {now:>12.1} {unit} (baseline {then:>12.1}, floor {floor:>12.1}) {verdict}"
        );
        if now < floor {
            failures.push(name);
        }
    };
    gate("jacobi 12^3 serial".into(), current.jacobi_mflops, baseline.jacobi_mflops, "MFLOPS");
    let same_nodes = |c: &[ScalingPoint], b: &[ScalingPoint]| {
        c.len() == b.len() && c.iter().zip(b).all(|(x, y)| x.nodes == y.nodes)
    };
    if !same_nodes(&current.strong_scaling, &baseline.strong_scaling)
        || !same_nodes(&current.multigrid, &baseline.multigrid)
        || current.cavity.len() != baseline.cavity.len()
        || current.cavity.iter().zip(&baseline.cavity).any(|(c, b)| c.nodes != b.nodes)
    {
        return Err("baseline shape changed: refresh it with perf_gate --write-baseline".into());
    }
    for (c, b) in current.strong_scaling.iter().zip(&baseline.strong_scaling) {
        gate(
            format!("distributed 64^3 @ {} nodes", c.nodes),
            c.aggregate_mflops,
            b.aggregate_mflops,
            "MFLOPS",
        );
    }
    for (c, b) in current.cavity.iter().zip(&baseline.cavity) {
        // Time per step gates as a rate so "bigger is better" holds.
        gate(
            format!("cavity 17^2 @ {} nodes", c.nodes),
            1.0 / c.seconds_per_step,
            1.0 / b.seconds_per_step,
            "steps/s",
        );
    }
    for (c, b) in current.multigrid.iter().zip(&baseline.multigrid) {
        gate(
            format!("multigrid 17^3 @ {} nodes", c.nodes),
            c.aggregate_mflops,
            b.aggregate_mflops,
            "MFLOPS",
        );
    }
    for (name, c, b) in [
        ("jacobi 64^3 @ 8 overlapped", &current.jacobi_overlap_8, &baseline.jacobi_overlap_8),
        (
            "multigrid 17^3 @ 8 overlapped",
            &current.multigrid_overlap_8,
            &baseline.multigrid_overlap_8,
        ),
    ] {
        // Simulated time gates as a rate so "bigger is better" holds.
        gate(name.into(), 1.0 / c.simulated_seconds, 1.0 / b.simulated_seconds, "runs/s");
    }
    // Machine-park scheduler figures: the backfill mix and the
    // small-job stream gate against the committed baseline.
    gate(
        "park mix backfill util".into(),
        100.0 * current.park_backfill.utilization,
        100.0 * baseline.park_backfill.utilization,
        "%",
    );
    gate(
        "park mix backfill throughput".into(),
        current.park_backfill.jobs_per_second,
        baseline.park_backfill.jobs_per_second,
        "jobs/s",
    );
    gate(
        "park small-job stream".into(),
        current.park_small_stream.jobs_per_second,
        baseline.park_small_stream.jobs_per_second,
        "jobs/s",
    );
    gate(
        "park small-job stream util".into(),
        100.0 * current.park_small_stream.utilization,
        100.0 * baseline.park_small_stream.utilization,
        "%",
    );
    // Ensemble figures: throughput and utilization gate against the
    // committed baseline like every simulated figure; the cache hit
    // rate holds an absolute floor further down.
    gate(
        "ensemble saturated throughput".into(),
        current.ensemble.members_per_second,
        baseline.ensemble.members_per_second,
        "mem/s",
    );
    gate(
        "ensemble park utilization".into(),
        100.0 * current.ensemble.utilization,
        100.0 * baseline.ensemble.utilization,
        "%",
    );
    // The acceptance bars are absolute, not relative to the baseline.
    let one = current.strong_scaling.first().map(|p| p.aggregate_mflops).unwrap_or(0.0);
    let eight = current.strong_scaling.last().map(|p| p.aggregate_mflops).unwrap_or(0.0);
    if eight < 4.0 * one {
        failures.push(format!("8-node scaling {eight:.1} < 4x 1-node {one:.1}"));
    }
    // Overlap must *strictly* beat synchronization at 8 nodes: hiding the
    // halo exchange under interior compute is the whole point.
    let sync_jacobi_8 = current.strong_scaling.last().map(|p| p.simulated_seconds).unwrap_or(0.0);
    if current.jacobi_overlap_8.simulated_seconds >= sync_jacobi_8 {
        failures.push(format!(
            "overlapped jacobi 64^3 @ 8 ({:.5}s) not faster than synchronized ({sync_jacobi_8:.5}s)",
            current.jacobi_overlap_8.simulated_seconds
        ));
    }
    let sync_mg_8 = current.multigrid.last().map(|p| p.simulated_seconds).unwrap_or(0.0);
    if current.multigrid_overlap_8.simulated_seconds >= sync_mg_8 {
        failures.push(format!(
            "overlapped multigrid 17^3 @ 8 ({:.5}s) not faster than synchronized ({sync_mg_8:.5}s)",
            current.multigrid_overlap_8.simulated_seconds
        ));
    }
    // Backfill must *strictly* beat FIFO on the mix, on both
    // utilization and throughput: looking past a blocked queue head is
    // the scheduler's whole reason to exist.
    if current.park_backfill.utilization <= current.park_fifo.utilization {
        failures.push(format!(
            "backfill utilization {:.3} not above fifo {:.3}",
            current.park_backfill.utilization, current.park_fifo.utilization
        ));
    }
    if current.park_backfill.jobs_per_second <= current.park_fifo.jobs_per_second {
        failures.push(format!(
            "backfill throughput {:.1} jobs/s not above fifo {:.1}",
            current.park_backfill.jobs_per_second, current.park_fifo.jobs_per_second
        ));
    }
    // The ensemble sweep must be served by rebinds and digest hits,
    // not recompiles: compile-once is the layer's contract.
    eprintln!(
        "  {:<32} {:>12.3}       ({} compiles, floor {ENSEMBLE_HIT_RATE_FLOOR})",
        "ensemble cache hit rate", current.ensemble.cache_hit_rate, current.ensemble.compiles,
    );
    if current.ensemble.cache_hit_rate < ENSEMBLE_HIT_RATE_FLOOR {
        failures.push(format!(
            "ensemble compile-cache hit rate {:.3} below the {ENSEMBLE_HIT_RATE_FLOOR} floor",
            current.ensemble.cache_hit_rate
        ));
    }
    // Host wall-clock never gates against the (machine-dependent)
    // baseline copy; the freshly measured speedup is what must hold.
    eprintln!(
        "  {:<32} {:>12.1}x     (interpreter {:.3}s vs kernels {:.3}s, floor {:.1}x)",
        "kernel speedup 64^3 @ 8",
        current.host.kernel_speedup,
        current.host.host_seconds_interpreted,
        current.host.host_seconds_kernel,
        REQUIRED_KERNEL_SPEEDUP,
    );
    if current.host.kernel_speedup < REQUIRED_KERNEL_SPEEDUP {
        failures.push(format!(
            "kernel fast path only {:.2}x over the interpreter (need {:.1}x)",
            current.host.kernel_speedup, REQUIRED_KERNEL_SPEEDUP
        ));
    }
    // Same rule for the certificate audit: wall-clock, so the committed
    // copy never gates — the freshly measured speedup must hold.
    eprintln!(
        "  {:<32} {:>12.0}x     ({} certs, {} obligations, {:.0} certs/s, floor {:.0}x)",
        "audit speedup vs re-run",
        current.cert.audit_speedup,
        current.cert.certs,
        current.cert.obligations,
        current.cert.certs_per_second,
        REQUIRED_AUDIT_SPEEDUP,
    );
    if current.cert.audit_speedup < REQUIRED_AUDIT_SPEEDUP {
        failures.push(format!(
            "certificate audit only {:.1}x cheaper than re-running (need {:.0}x)",
            current.cert.audit_speedup, REQUIRED_AUDIT_SPEEDUP
        ));
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!("{} figure(s) regressed: {}", failures.len(), failures.join(", ")))
    }
}

/// The `--summary` markdown: every simulated figure next to the host
/// wall-clock figures, in the shape `$GITHUB_STEP_SUMMARY` renders.
fn summary_markdown(current: &Baseline) -> String {
    let mut md = String::from("## NSC performance gate\n\n");
    md.push_str("### Simulated figures (bit-deterministic)\n\n");
    md.push_str("| figure | nodes | simulated MFLOPS | simulated seconds |\n");
    md.push_str("|---|---:|---:|---:|\n");
    md.push_str(&format!("| jacobi 12^3 serial | 1 | {:.1} | — |\n", current.jacobi_mflops));
    for p in &current.strong_scaling {
        md.push_str(&format!(
            "| jacobi 64^3 | {} | {:.1} | {:.5} |\n",
            p.nodes, p.aggregate_mflops, p.simulated_seconds
        ));
    }
    for p in &current.cavity {
        md.push_str(&format!(
            "| cavity 17^2 | {} | {:.1} | {:.5}/step |\n",
            p.nodes, p.aggregate_mflops, p.seconds_per_step
        ));
    }
    for p in &current.multigrid {
        md.push_str(&format!(
            "| multigrid 17^3 | {} | {:.1} | {:.5} |\n",
            p.nodes, p.aggregate_mflops, p.simulated_seconds
        ));
    }
    let jo = &current.jacobi_overlap_8;
    let mo = &current.multigrid_overlap_8;
    md.push_str(&format!(
        "| jacobi 64^3 overlapped | {} | {:.1} | {:.5} |\n",
        jo.nodes, jo.aggregate_mflops, jo.simulated_seconds
    ));
    md.push_str(&format!(
        "| multigrid 17^3 overlapped | {} | {:.1} | {:.5} |\n",
        mo.nodes, mo.aggregate_mflops, mo.simulated_seconds
    ));
    md.push_str("\n### Machine park (4-node park, simulated scheduler figures)\n\n");
    md.push_str("| stream | policy | jobs | utilization | jobs/s | makespan |\n");
    md.push_str("|---|---|---:|---:|---:|---:|\n");
    for (stream, policy, p) in [
        ("benchmark mix", "fifo", &current.park_fifo),
        ("benchmark mix", "backfill", &current.park_backfill),
        ("small-job stream", "backfill", &current.park_small_stream),
    ] {
        md.push_str(&format!(
            "| {stream} | {policy} | {} | {:.1}% | {:.1} | {:.5}s |\n",
            p.jobs,
            100.0 * p.utilization,
            p.jobs_per_second,
            p.makespan
        ));
    }
    let e = &current.ensemble;
    md.push_str("\n### Ensemble engine (12-member cavity study, simulated figures)\n\n");
    md.push_str("| members | members/s saturated | utilization | compiles | cache hit rate |\n");
    md.push_str("|---:|---:|---:|---:|---:|\n");
    md.push_str(&format!(
        "| {} | {:.1} | {:.1}% | {} | {:.3} (floor {ENSEMBLE_HIT_RATE_FLOOR}) |\n",
        e.members,
        e.members_per_second,
        100.0 * e.utilization,
        e.compiles,
        e.cache_hit_rate
    ));
    let h = &current.host;
    md.push_str("\n### Host wall-clock (this runner; jacobi 64^3 @ 8 nodes)\n\n");
    md.push_str("| path | host seconds | host MFLOPS |\n|---|---:|---:|\n");
    md.push_str(&format!(
        "| compiled kernels | {:.4} | {:.1} |\n",
        h.host_seconds_kernel, h.host_mflops_kernel
    ));
    md.push_str(&format!(
        "| interpreter | {:.4} | {:.1} |\n",
        h.host_seconds_interpreted, h.host_mflops_interpreted
    ));
    md.push_str(&format!(
        "\nKernel speedup: **{:.1}x** (gate floor {REQUIRED_KERNEL_SPEEDUP:.1}x).\n",
        h.kernel_speedup
    ));
    let c = &current.cert;
    md.push_str("\n### Certificate audit (this runner; jacobi 16^3 @ 4 nodes)\n\n");
    md.push_str("| certs | obligations | certs/s | audit speedup vs re-run |\n");
    md.push_str("|---:|---:|---:|---:|\n");
    md.push_str(&format!(
        "| {} | {} | {:.0} | {:.0}x (floor {REQUIRED_AUDIT_SPEEDUP:.0}x) |\n",
        c.certs, c.obligations, c.certs_per_second, c.audit_speedup
    ));
    md
}

/// The `--help` text. Spells out what `--write-baseline` does to the
/// machine-dependent `host` section, because a refreshed baseline is a
/// committed artifact: everything else in it is bit-deterministic, the
/// `host` numbers are whatever machine ran the refresh.
fn usage() -> String {
    format!(
        "perf_gate: the CI performance-regression gate over simulated figures.

usage: perf_gate [--check <baseline.json>] [--write <out.json>]
                 [--write-baseline [path]] [--summary <markdown.md>] [--help]

  --check <baseline.json>   Measure the current figures and compare them
                            against the committed baseline; any simulated
                            figure more than {drop:.0}% below its baseline
                            fails the gate. Also enforces the absolute
                            bars: 8-node scaling, overlap strictly faster
                            than synchronized, backfill strictly above
                            FIFO on park utilization and throughput, an
                            ensemble compile-cache hit rate of at least
                            {hit}, a freshly measured kernel speedup
                            of at least {speedup:.1}x over the
                            interpreter, and a freshly measured
                            certificate-audit speedup of at least
                            {audit:.0}x over re-running the workload.
  --write <out.json>        Write the measured figures as JSON.
  --summary <markdown.md>   Append a markdown figure table (CI passes
                            $GITHUB_STEP_SUMMARY).
  --write-baseline [path]   Refresh the committed baseline in place
                            (default {path}).

refresh semantics of --write-baseline:
  Every figure except the `host` section is simulated and
  bit-deterministic, so a refresh records the same numbers on any
  machine and the {drop:.0}% drop tolerance is meaningful. The `host`
  section is different: it is wall-clock, so a refresh overwrites it
  with measurements of *whatever machine ran the refresh*. That is fine
  — the committed `host` numbers are informational only. The gate never
  compares them against a baseline; the only host-side requirement is
  the freshly measured kernel-vs-interpreter speedup (at least
  {speedup:.1}x), which is a property of the code, not of the runner.
  There is no need to refresh the baseline from any particular machine.",
        drop = TOLERATED_DROP * 100.0,
        speedup = REQUIRED_KERNEL_SPEEDUP,
        hit = ENSEMBLE_HIT_RATE_FLOOR,
        audit = REQUIRED_AUDIT_SPEEDUP,
        path = BASELINE_PATH,
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut write_path = None;
    let mut check_path = None;
    let mut summary_path = None;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => {
                eprintln!("{}", usage());
                return ExitCode::SUCCESS;
            }
            "--write" => write_path = it.next().cloned(),
            "--check" => check_path = it.next().cloned(),
            // CI passes $GITHUB_STEP_SUMMARY here; any writable path works.
            "--summary" => summary_path = it.next().cloned(),
            // Refreshing the committed baseline is one command instead of
            // hand-edited JSON; an optional path overrides the default.
            "--write-baseline" => {
                write_path = match it.peek() {
                    Some(p) if !p.starts_with("--") => it.next().cloned(),
                    _ => Some(BASELINE_PATH.to_string()),
                }
            }
            other => {
                eprintln!("unknown argument '{other}'\n\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }
    if write_path.is_none() && check_path.is_none() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }

    eprintln!("measuring simulated performance figures...");
    let current = measure();
    let json = serde_json::to_string_pretty(&current).expect("figures serialize");
    if let Some(path) = &write_path {
        std::fs::write(path, format!("{json}\n")).expect("baseline written");
        eprintln!("wrote {path}");
    }
    if let Some(path) = &summary_path {
        use std::io::Write;
        // Append (not truncate): $GITHUB_STEP_SUMMARY accumulates steps.
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .unwrap_or_else(|e| panic!("cannot open summary {path}: {e}"));
        f.write_all(summary_markdown(&current).as_bytes()).expect("summary written");
        eprintln!("appended summary to {path}");
    }
    if let Some(path) = &check_path {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline: Baseline = serde_json::from_str(&text).expect("baseline parses");
        eprintln!("checking against {path} (tolerated drop {:.0}%):", TOLERATED_DROP * 100.0);
        if let Err(msg) = check(&current, &baseline) {
            eprintln!("FAIL: {msg}");
            return ExitCode::FAILURE;
        }
        eprintln!("all figures within tolerance");
    }
    ExitCode::SUCCESS
}
