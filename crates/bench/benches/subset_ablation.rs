//! T4 — §6's "simpler architectural model" tradeoff, measured: the same
//! solvers programmed against restricted machines. Memory-bound Jacobi is
//! nearly free to restrict; losing the shift/delay units costs array
//! copies; compute-bound kernels halve with singlets-only.

use criterion::{criterion_group, criterion_main, Criterion};
use nsc_arch::{KnowledgeBase, MachineConfig, SubsetModel};
use nsc_cfd::{
    build_chebyshev_document, grid::manufactured_problem, nsc_run::run_jacobi_on_node,
    JacobiVariant,
};
use nsc_sim::{NodeSim, RunOptions};

fn report() {
    let n = 8;
    let (u0, f, _) = manufactured_problem(n);
    eprintln!("Jacobi {n}^3, one sweep pair:");
    let mut base = 0u64;
    for (label, subset, variant) in [
        ("full NSC", SubsetModel::Full, JacobiVariant::Full),
        ("singlets-only", SubsetModel::SingletsOnly, JacobiVariant::SingletsOnly),
        ("no shift/delay", SubsetModel::NoSdu, JacobiVariant::NoSdu),
    ] {
        let kb = KnowledgeBase::new(MachineConfig::nsc_1988().subset(subset));
        let mut node = NodeSim::new(kb);
        let run = run_jacobi_on_node(&mut node, &u0, &f, 0.0, 1, variant).expect("runs");
        if base == 0 {
            base = run.counters.cycles;
        }
        eprintln!(
            "  {label:<16} {:>9} cycles  ({:.2}x)  {:>7.1} MFLOPS",
            run.counters.cycles,
            run.counters.cycles as f64 / base as f64,
            run.mflops
        );
    }

    eprintln!("Horner degree-10 kernel, 4096 elements:");
    let coeffs = [0.5, -0.25, 0.125, 1.5, -0.75, 2.0, -1.0, 0.3, 0.7, -0.2, 1.1];
    let mut base = 0u64;
    for (label, stages) in [("full NSC (1 instr)", 10usize), ("singlets-only (2 instr)", 5)] {
        let env = nsc_core::VisualEnvironment::nsc_1988();
        let kb = KnowledgeBase::nsc_1988();
        let mut doc = build_chebyshev_document(4096, &coeffs, stages);
        let out = env.session().compile(&mut doc).unwrap().output;
        let mut node = NodeSim::new(kb);
        // x in plane 0
        let xs: Vec<f64> = (0..4096).map(|i| (i % 17) as f64 * 0.1 - 0.8).collect();
        node.mem.plane_mut(nsc_arch::PlaneId(0)).write_slice(0, &xs);
        node.run_program(&out.program, &RunOptions::default()).unwrap();
        if base == 0 {
            base = node.counters.cycles;
        }
        eprintln!(
            "  {label:<24} {:>9} cycles  ({:.2}x)",
            node.counters.cycles,
            node.counters.cycles as f64 / base as f64
        );
        let _ = doc.pipeline_count();
    }
}

fn bench(c: &mut Criterion) {
    report();
    let (u0, f, _) = manufactured_problem(6);
    c.bench_function("jacobi_pair_full_6", |b| {
        b.iter(|| {
            let mut node = NodeSim::nsc_1988();
            run_jacobi_on_node(&mut node, &u0, &f, 0.0, 1, JacobiVariant::Full)
                .unwrap()
                .counters
                .cycles
        })
    });
}

criterion_group! {
    name = ablation;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(ablation);
