//! T1 — "maximum rate of 640 MFLOPS per node": measure how close a
//! saturated pipeline configuration gets on the simulator, and verify the
//! published system-level numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use nsc_arch::{FuId, FuOp, InPort, KnowledgeBase, PlaneId, SinkRef, SourceRef};
use nsc_microcode::{FuField, FuInputSel, MicroInstruction, PlaneDmaField, ProgramBuilder};
use nsc_sim::{NodeSim, RunOptions};

fn saturated(kb: &KnowledgeBase, count: u32) -> nsc_microcode::MicroProgram {
    let mut ins = MicroInstruction::empty(kb);
    for chain in 0..4u8 {
        *ins.plane_rd_mut(PlaneId(chain)) = PlaneDmaField::contiguous(0, count);
        *ins.plane_wr_mut(PlaneId(4 + chain)) = PlaneDmaField::contiguous(0, count);
        let fus: Vec<FuId> = (0..8).map(|i| FuId(chain * 8 + i)).collect();
        for (i, &fu) in fus.iter().enumerate() {
            *ins.fu_mut(fu) = FuField {
                enabled: true,
                op: FuOp::MulAddConst,
                in_a: FuInputSel::Switch,
                in_b: FuInputSel::Constant(0),
                const_slot: 0,
                preload: Some(1.0),
            };
            let src = if i == 0 {
                SourceRef::PlaneRead(PlaneId(chain))
            } else {
                SourceRef::Fu(fus[i - 1])
            };
            ins.switch.route(kb, src, SinkRef::FuIn(fu, InPort::A));
        }
        ins.switch.route(kb, SourceRef::Fu(fus[7]), SinkRef::PlaneWrite(PlaneId(4 + chain)));
    }
    ins.seq = nsc_microcode::SequencerField::halt();
    let mut b = ProgramBuilder::new(kb, "saturate");
    b.push(ins);
    b.finish()
}

fn report() {
    let kb = KnowledgeBase::nsc_1988();
    let cfg = kb.config();
    eprintln!(
        "published: 640 MFLOPS/node; configured peak {} MFLOPS; 64 nodes {:.2} GFLOPS / {} GB",
        cfg.peak_mflops(),
        cfg.system_peak_gflops(64),
        cfg.system_memory_gb(64)
    );
    let prog = saturated(&kb, 1 << 16);
    let mut node = NodeSim::new(kb.clone());
    node.run_program(&prog, &RunOptions::default()).unwrap();
    eprintln!(
        "measured saturated node: {:.1} MFLOPS = {:.1}% of peak",
        node.counters.mflops(cfg.clock_hz),
        100.0 * node.counters.efficiency(cfg.clock_hz, cfg.peak_mflops())
    );
    assert!(node.counters.efficiency(cfg.clock_hz, cfg.peak_mflops()) > 0.95);
}

fn bench(c: &mut Criterion) {
    report();
    let kb = KnowledgeBase::nsc_1988();
    let prog = saturated(&kb, 4096);
    c.bench_function("saturated_node_4096", |b| {
        b.iter(|| {
            let mut node = NodeSim::new(kb.clone());
            node.run_program(&prog, &RunOptions::default()).unwrap();
            node.counters.flops
        })
    });
}

criterion_group! {
    name = peak;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(peak);
