//! T3 — "more convenient and faster to use than hand-written microcode":
//! elementary user actions in the visual environment vs. the raw bits and
//! fields a hand microprogrammer must specify for the same program.

use criterion::{criterion_group, criterion_main, Criterion};
use nsc_cfd::{build_jacobi_document, JacobiVariant};
use nsc_core::VisualEnvironment;
use nsc_editor::{Event, Session, WIN_W};
use nsc_microcode::Census;

/// Semantic decisions in a document: one per icon placement, wire, unit
/// programming, tap table and DMA form — the action count an interactive
/// session would incur (each decision is one gesture + at most one menu
/// pick or short form).
fn decision_count(doc: &nsc_diagram::Document) -> usize {
    doc.pipelines()
        .iter()
        .map(|p| {
            p.icon_count()
                + p.connection_count()
                + p.fu_assigns().count()
                + p.connections().filter(|c| c.dma.is_some()).count()
        })
        .sum()
}

fn report() {
    let env = VisualEnvironment::nsc_1988();
    let kb = env.kb();
    let census = Census::of_machine(kb);
    let mut doc = build_jacobi_document(16, 1e-6, 1000, JacobiVariant::Full);
    let out = env.session().compile(&mut doc).expect("compiles").output;
    let decisions = decision_count(&doc);
    let bits = out.program.total_bits(kb);
    let leaves = census.total_leaves() * out.program.len();
    eprintln!("Jacobi 16^3 program ({} instructions):", out.program.len());
    eprintln!("  visual environment : {decisions} user decisions (icons+wires+menus+forms)");
    eprintln!("  hand microcode     : {bits} bits across {leaves} leaf fields");
    eprintln!(
        "  ratio              : {:.0} bits per decision / {:.1} fields per decision",
        bits as f64 / decisions as f64,
        leaves as f64 / decisions as f64
    );

    // A measured mini-session for calibration: one placed icon + one wire
    // + one menu pick + the DMA form.
    let mut s = Session::new(env.editor("calibration"));
    let py = 2 + 1 + 2 * 4; // MEMORY palette row
    s.feed([
        Event::MouseDown { x: WIN_W - 8, y: py },
        Event::MouseUp { x: 25, y: 8 },
        Event::MouseDown { x: WIN_W - 8, y: 2 + 1 },
        Event::MouseUp { x: 50, y: 8 },
        Event::MouseDown { x: 25, y: 9 },
        Event::MouseUp { x: 50, y: 8 },
        Event::Text("0".into()),
        Event::SubmitForm,
    ]);
    eprintln!(
        "  measured mini-session: {} elementary actions for 2 icons + 1 wire + DMA form",
        s.editor.effort.total_actions()
    );
}

fn bench(c: &mut Criterion) {
    report();
    let env = VisualEnvironment::nsc_1988();
    c.bench_function("build_and_generate_jacobi_8", |b| {
        b.iter(|| {
            let mut doc = build_jacobi_document(8, 1e-6, 100, JacobiVariant::Full);
            env.session().compile(&mut doc).unwrap().program().len()
        })
    });
}

criterion_group! {
    name = effort;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(effort);
