//! E1/E2/E4-E10 — regenerate the paper's figures as artifacts and time
//! the renders. Every `cargo bench -p nsc-bench --bench figures` run
//! rewrites `out/` from the live system.

use criterion::{criterion_group, criterion_main, Criterion};
use nsc_cfd::{build_jacobi_document, JacobiVariant};
use nsc_core::VisualEnvironment;
use nsc_microcode::Census;

fn regenerate_artifacts() {
    std::fs::create_dir_all("out").ok();
    let env = VisualEnvironment::nsc_1988();
    // Fig 1: architecture numbers.
    let kb = env.kb();
    let cfg = kb.config();
    let fig1 = format!(
        "Figure 1 numbers: {} FUs ({}T/{}D/{}S), {} planes x {} MB = {} GB, \
         {} caches, {} SDUs, switch {}x{}, peak {} MFLOPS\n",
        cfg.fu_count(),
        cfg.triplets,
        cfg.doublets,
        cfg.singlets,
        cfg.memory.planes,
        cfg.memory.bytes_per_plane() / (1 << 20),
        cfg.memory.total_gigabytes(),
        cfg.cache.caches,
        cfg.sdu.units,
        kb.sources().len(),
        kb.sinks().len(),
        cfg.peak_mflops()
    );
    std::fs::write("out/bench_fig1_numbers.txt", &fig1).ok();
    eprintln!("{fig1}");
    // Fig 11: the Jacobi diagram.
    let doc = build_jacobi_document(8, 1e-6, 100, JacobiVariant::Full);
    let frames = env.display_document(&doc);
    std::fs::write("out/bench_fig11_render.txt", &frames[0].1).ok();
    // T2 companion: the census table.
    std::fs::write("out/bench_t2_census.txt", Census::of_machine(kb).render_table()).ok();
}

fn bench(c: &mut Criterion) {
    regenerate_artifacts();
    let env = VisualEnvironment::nsc_1988();
    let doc = build_jacobi_document(8, 1e-6, 100, JacobiVariant::Full);
    c.bench_function("fig11_render_jacobi_diagram", |b| b.iter(|| env.display_document(&doc)));
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(figures);
