//! T2 — "a few thousand bits of information per instruction, encoded in
//! dozens of separate fields": the exact census, plus encode/decode cost.

use criterion::{criterion_group, criterion_main, Criterion};
use nsc_arch::{KnowledgeBase, MachineConfig, SubsetModel};
use nsc_microcode::{Census, MicroInstruction};

fn report() {
    eprintln!("machine                         bits   bytes  groups  leaf fields");
    for (name, cfg) in [
        ("NSC 1988 (full)", MachineConfig::nsc_1988()),
        ("no-cache subset", MachineConfig::nsc_1988().subset(SubsetModel::NoCaches)),
        ("no-SDU subset", MachineConfig::nsc_1988().subset(SubsetModel::NoSdu)),
    ] {
        let kb = KnowledgeBase::new(cfg);
        let census = Census::of_machine(&kb);
        eprintln!(
            "{name:<30} {:>6} {:>7} {:>7} {:>12}",
            census.total_bits(),
            census.total_bits().div_ceil(8),
            census.total_groups(),
            census.total_leaves()
        );
    }
    let kb = KnowledgeBase::nsc_1988();
    eprintln!("\n{}", Census::of_machine(&kb).render_table());
}

fn bench(c: &mut Criterion) {
    report();
    let kb = KnowledgeBase::nsc_1988();
    let ins = MicroInstruction::empty(&kb);
    c.bench_function("encode_instruction", |b| b.iter(|| ins.encode(&kb)));
    let bytes = ins.encode(&kb);
    c.bench_function("decode_instruction", |b| {
        b.iter(|| MicroInstruction::decode(&kb, &bytes).unwrap())
    });
}

criterion_group! {
    name = width;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(width);
