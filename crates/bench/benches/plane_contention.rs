//! T5 — §3's allocation problem, quantified: the same expression compiled
//! under different variable-to-plane allocations; bad layouts pay cache
//! staging instructions and simulated time.

use criterion::{criterion_group, criterion_main, Criterion};
use nsc_arch::KnowledgeBase;
use nsc_codegen::generate;
use nsc_expr::{compile_expr, AllocStrategy, Expr};
use nsc_sim::{NodeSim, RunOptions};

fn workload() -> Expr {
    // y = (a+b)*(c-d) + (e+f)*0.5
    Expr::var("a")
        .add(Expr::var("b"))
        .mul(Expr::var("c").sub(Expr::var("d")))
        .add(Expr::var("e").add(Expr::var("f")).mul(Expr::Const(0.5)))
}

fn run(strategy: AllocStrategy, len: u64) -> (usize, u64) {
    let kb = KnowledgeBase::nsc_1988();
    let expr = workload();
    let (doc, stats) = compile_expr(&expr, "y", len, strategy, &kb);
    let out = generate(&kb, &doc).unwrap();
    let mut node = NodeSim::new(kb);
    for name in expr.variables() {
        let decl = doc.decls.lookup(&name).unwrap();
        let data: Vec<f64> = (0..len).map(|i| (i as f64) * 0.01 + 1.0).collect();
        node.mem.plane_mut(decl.plane).write_slice(decl.base, &data);
    }
    node.run_program(&out.program, &RunOptions::default()).unwrap();
    (stats.staging_instructions, node.counters.cycles)
}

fn report() {
    eprintln!("6-variable expression, 2048 elements:");
    eprintln!("allocation          staging instrs   cycles   slowdown");
    let mut base = 0u64;
    for s in AllocStrategy::ALL.iter().rev() {
        let (staging, cycles) = run(*s, 2048);
        if base == 0 {
            base = cycles;
        }
        eprintln!(
            "{:<20} {staging:>12} {cycles:>10}   {:.2}x",
            s.label(),
            cycles as f64 / base as f64
        );
    }
}

fn bench(c: &mut Criterion) {
    report();
    c.bench_function("compile_and_run_round_robin", |b| {
        b.iter(|| run(AllocStrategy::RoundRobin, 256))
    });
    c.bench_function("compile_and_run_one_plane", |b| {
        b.iter(|| run(AllocStrategy::AllInOnePlane, 256))
    });
}

criterion_group! {
    name = contention;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(contention);
