//! T6 — ref [6]'s motivation: multigrid vs point Jacobi work to a fixed
//! tolerance, with simulated-NSC smoothing cost.

use criterion::{criterion_group, criterion_main, Criterion};
use nsc_cfd::{
    grid::manufactured_problem, host::jacobi_sweep_host, host::JacobiHostState, vcycle, MgOptions,
};

fn report() {
    let n = 17;
    let tol = 1e-7;
    let (u0, f, _) = manufactured_problem(n);
    let mut host = JacobiHostState::new(&u0, &f);
    let mut jacobi_sweeps = 0usize;
    for _ in 0..100_000 {
        jacobi_sweeps += 1;
        if jacobi_sweep_host(&mut host) < tol {
            break;
        }
    }
    let (mut u, f2, _) = manufactured_problem(n);
    let stats = vcycle(&mut u, &f2, tol, 50, &MgOptions::default());
    eprintln!("{n}^3 Poisson to {tol:e}:");
    eprintln!("  point Jacobi : {jacobi_sweeps} sweeps");
    eprintln!(
        "  multigrid    : {} cycles = {:.1} fine-equivalent sweeps ({:.0}x less work)",
        stats.cycles,
        stats.fine_equivalent_sweeps,
        jacobi_sweeps as f64 / stats.fine_equivalent_sweeps
    );
}

fn bench(c: &mut Criterion) {
    report();
    let (u0, f, _) = manufactured_problem(17);
    c.bench_function("host_jacobi_sweep_17", |b| {
        let mut state = JacobiHostState::new(&u0, &f);
        b.iter(|| jacobi_sweep_host(&mut state))
    });
    c.bench_function("host_vcycle_17", |b| {
        b.iter(|| {
            let (mut u, f2, _) = manufactured_problem(17);
            vcycle(&mut u, &f2, 0.0, 1, &MgOptions::default()).cycles
        })
    });
}

criterion_group! {
    name = mg;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(mg);
