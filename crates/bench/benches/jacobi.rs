//! E10 — the paper's running example end-to-end: time one ping-pong sweep
//! pair of the generated Jacobi microcode on the simulated node, and
//! record the residual convergence series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nsc_bench::sample_size;
use nsc_cfd::{grid::manufactured_problem, nsc_run::run_jacobi_on_node, JacobiVariant};
use nsc_sim::NodeSim;

fn report_convergence() {
    let (u0, f, _) = manufactured_problem(12);
    let mut node = NodeSim::nsc_1988();
    let run = run_jacobi_on_node(&mut node, &u0, &f, 1e-7, 3000, JacobiVariant::Full)
        .expect("jacobi runs");
    eprintln!(
        "jacobi 12^3: converged={} sweeps={} residual={:.3e} achieved={:.1} MFLOPS",
        run.converged, run.sweeps, run.residual, run.mflops
    );
}

fn bench(c: &mut Criterion) {
    report_convergence();
    for n in [8usize, 12] {
        let (u0, f, _) = manufactured_problem(n);
        c.bench_with_input(BenchmarkId::new("jacobi_sweep_pair", n), &n, |b, _| {
            b.iter(|| {
                let mut node = NodeSim::nsc_1988();
                run_jacobi_on_node(&mut node, &u0, &f, 0.0, 1, JacobiVariant::Full).unwrap()
            })
        });
    }
}

criterion_group! {
    name = jacobi;
    config = Criterion::default().sample_size(sample_size(10));
    targets = bench
}
criterion_main!(jacobi);
