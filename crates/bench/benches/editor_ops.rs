//! Editor interactivity: the paper's usability claims need the editor's
//! per-gesture work (hit-testing + incremental checking + redraw) to be
//! instantaneous. These benches measure the core gesture costs.

use criterion::{criterion_group, criterion_main, Criterion};
use nsc_arch::{AlsKind, InPort, PlaneId};
use nsc_core::VisualEnvironment;
use nsc_diagram::{DmaAttrs, IconKind, PadLoc, PadRef, Point};

fn busy_editor() -> nsc_editor::Editor {
    let env = VisualEnvironment::nsc_1988();
    let mut ed = env.editor("bench");
    ed.set_stream_len(64);
    for i in 0..4 {
        ed.place_icon(
            IconKind::als(AlsKind::Triplet),
            Point::new(34 + 12 * (i % 3), 4 + 13 * (i / 3)),
        );
    }
    for i in 0..4u8 {
        ed.place_icon(
            IconKind::Memory { plane: Some(PlaneId(i)) },
            Point::new(20, 4 + 6 * i as i32),
        );
    }
    ed
}

fn bench(c: &mut Criterion) {
    let ed = busy_editor();
    let d = ed.doc.pipeline(ed.current).unwrap();
    let mem0 = d.icons().find(|i| matches!(i.kind, IconKind::Memory { .. })).unwrap().id;
    let from = PadLoc::new(mem0, PadRef::Io);

    c.bench_function("legal_targets_menu", |b| b.iter(|| ed.legal_targets(from)));
    c.bench_function("incremental_check", |b| {
        b.iter(|| {
            ed.checker().check_pipeline(
                ed.doc.pipeline(ed.current).unwrap(),
                nsc_checker::Stage::Incremental,
            )
        })
    });
    c.bench_function("render_ascii", |b| b.iter(|| nsc_editor::render_ascii(&ed)));
    c.bench_function("connect_and_undo", |b| {
        b.iter(|| {
            let mut e = ed.clone();
            let als = e
                .doc
                .pipeline(e.current)
                .unwrap()
                .icons()
                .find(|i| matches!(i.kind, IconKind::Als { .. }))
                .unwrap()
                .id;
            let c = e.connect(from, PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::A }));
            if let Some(c) = c {
                e.set_dma(c, DmaAttrs::at_address(0));
            }
            e.undo();
            e.undo()
        })
    });
}

criterion_group! {
    name = editor;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(editor);
