//! Strong scaling of the distributed Jacobi solver: the same global
//! problem spread across 1/2/4/8 nodes with halo exchange, reporting both
//! wall-clock time of the simulation and the *simulated* aggregate MFLOPS
//! (compute plus router time — the figure the CI perf gate tracks, and
//! the acceptance bar: 8 nodes ≥ 4x the 1-node rate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nsc_bench::{sample_size, strong_scaling_point};

fn report_scaling() {
    // The gate-sized problem: big enough that compute dominates the
    // 10 us/hop + 100 ns/word router charges.
    let n = 64;
    let points: Vec<_> = (0..=3u32).map(|dim| strong_scaling_point(dim, n, 1, false)).collect();
    eprintln!("strong scaling, jacobi {n}^3, 1 ping-pong pair:");
    eprintln!("  nodes   aggregate MFLOPS   simulated ms   speedup");
    let base = points[0].aggregate_mflops;
    for p in &points {
        eprintln!(
            "  {:>5}   {:>16.1}   {:>12.3}   {:>6.2}x",
            p.nodes,
            p.aggregate_mflops,
            p.simulated_seconds * 1e3,
            p.aggregate_mflops / base
        );
    }
    let eight = points[3].aggregate_mflops;
    assert!(
        eight >= 4.0 * base,
        "8-node aggregate must be >= 4x the 1-node rate: {eight:.1} vs {base:.1}"
    );
}

fn bench(c: &mut Criterion) {
    report_scaling();
    for dim in 0..=3u32 {
        let nodes = 1usize << dim;
        c.bench_with_input(BenchmarkId::new("distributed_jacobi_pair_32", nodes), &dim, |b, &d| {
            b.iter(|| strong_scaling_point(d, 32, 1, false))
        });
    }
}

criterion_group! {
    name = strong_scaling;
    config = Criterion::default().sample_size(sample_size(10));
    targets = bench
}
criterion_main!(strong_scaling);
