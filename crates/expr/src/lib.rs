//! # nsc-expr — the compilation problem of paper §3, made executable
//!
//! "This causes serious problems for a compiler in trying to decide where
//! to allocate variables, since the optimum layout for one pipeline may be
//! unworkable for the next ... Given current compiler technology, it is
//! difficult to see how all of these considerations can be handled
//! simultaneously."
//!
//! This crate provides the minimal compiler front half needed to *measure*
//! that difficulty (experiment T5):
//!
//! * [`Expr`] — elementwise vector expression trees (loads, constants,
//!   unary/binary operations) with a host evaluator;
//! * [`AllocStrategy`] — variable-to-plane allocation policies, from the
//!   naive everything-in-plane-0 through round-robin spreading;
//! * [`compile_expr`] — a mapper onto pipeline diagrams that *works around*
//!   plane-port conflicts the §3 way: when two operand streams live in the
//!   same plane, all but one are staged through data caches by extra
//!   preceding instructions. The instruction count (and the simulated
//!   cycles) then quantify how much a bad allocation costs.

pub mod alloc;
pub mod compile;
pub mod expr;

pub use self::alloc::AllocStrategy;
pub use self::compile::{compile_expr, CompileStats};
pub use self::expr::Expr;
