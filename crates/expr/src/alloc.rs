//! Variable-to-plane allocation strategies (the §3 difficulty knob).

use nsc_arch::PlaneId;
use nsc_diagram::{Declarations, VarDecl};

/// How variables are assigned to memory planes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocStrategy {
    /// Everything in plane 0 (a naive compiler's first attempt; maximal
    /// port contention).
    AllInOnePlane,
    /// Variables packed two per plane.
    TwoPerPlane,
    /// One plane per variable, round-robin (the contention-free layout a
    /// knowledgeable programmer — or the checker-guided editor — picks).
    RoundRobin,
}

impl AllocStrategy {
    /// All strategies, worst to best.
    pub const ALL: [AllocStrategy; 3] =
        [AllocStrategy::AllInOnePlane, AllocStrategy::TwoPerPlane, AllocStrategy::RoundRobin];

    /// Short label for result tables.
    pub fn label(self) -> &'static str {
        match self {
            AllocStrategy::AllInOnePlane => "all-in-one-plane",
            AllocStrategy::TwoPerPlane => "two-per-plane",
            AllocStrategy::RoundRobin => "one-per-plane",
        }
    }

    /// Declare `vars` (plus the output variable) of length `len` each,
    /// reserving plane 15 for the output and scratch.
    pub fn declare(self, vars: &[String], output: &str, len: u64, planes: usize) -> Declarations {
        let mut decls = Declarations::default();
        let usable = planes.saturating_sub(1).max(1); // keep the last plane for output
        for (i, name) in vars.iter().enumerate() {
            let (plane, slot) = match self {
                AllocStrategy::AllInOnePlane => (0usize, i as u64),
                AllocStrategy::TwoPerPlane => (i / 2 % usable, (i % 2) as u64),
                AllocStrategy::RoundRobin => (i % usable, 0u64),
            };
            decls.declare(VarDecl {
                name: name.clone(),
                plane: PlaneId(plane as u8),
                base: slot * len,
                len,
            });
        }
        decls.declare(VarDecl {
            name: output.to_string(),
            plane: PlaneId(planes as u8 - 1),
            base: 0,
            len,
        });
        decls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("v{i}")).collect()
    }

    #[test]
    fn one_plane_piles_everything_up() {
        let d = AllocStrategy::AllInOnePlane.declare(&names(4), "y", 100, 16);
        for i in 0..4 {
            let v = d.lookup(&format!("v{i}")).unwrap();
            assert_eq!(v.plane, PlaneId(0));
            assert_eq!(v.base, i as u64 * 100, "non-overlapping slots");
        }
        assert_eq!(d.lookup("y").unwrap().plane, PlaneId(15));
    }

    #[test]
    fn round_robin_spreads_planes() {
        let d = AllocStrategy::RoundRobin.declare(&names(4), "y", 100, 16);
        let planes: Vec<_> = (0..4).map(|i| d.lookup(&format!("v{i}")).unwrap().plane).collect();
        let set: std::collections::HashSet<_> = planes.iter().collect();
        assert_eq!(set.len(), 4, "distinct planes");
    }

    #[test]
    fn two_per_plane_pairs_variables() {
        let d = AllocStrategy::TwoPerPlane.declare(&names(4), "y", 64, 16);
        assert_eq!(d.lookup("v0").unwrap().plane, d.lookup("v1").unwrap().plane);
        assert_ne!(d.lookup("v0").unwrap().plane, d.lookup("v2").unwrap().plane);
    }
}
