//! Elementwise vector expression trees.

use nsc_arch::FuOp;
use std::collections::BTreeSet;

/// An elementwise expression over named vector variables.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A named input vector.
    Load(String),
    /// A broadcast constant.
    Const(f64),
    /// A unary operation.
    Unary(FuOp, Box<Expr>),
    /// A binary operation.
    Binary(FuOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Load a variable.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Load(name.into())
    }

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)] // DSL builder; by-value Expr, not ops::Add
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Binary(FuOp::Add, Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    #[allow(clippy::should_implement_trait)] // DSL builder; by-value Expr, not ops::Sub
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Binary(FuOp::Sub, Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    #[allow(clippy::should_implement_trait)] // DSL builder; by-value Expr, not ops::Mul
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Binary(FuOp::Mul, Box::new(self), Box::new(rhs))
    }

    /// `|self|`.
    pub fn abs(self) -> Expr {
        Expr::Unary(FuOp::Abs, Box::new(self))
    }

    /// Distinct variables referenced, in first-use order.
    pub fn variables(&self) -> Vec<String> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Load(name) = e {
                if seen.insert(name.clone()) {
                    out.push(name.clone());
                }
            }
        });
        out
    }

    /// Number of operation nodes (functional units needed, before staging).
    pub fn op_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |e| {
            if matches!(e, Expr::Unary(..) | Expr::Binary(..)) {
                n += 1;
            }
        });
        n
    }

    fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Unary(_, a) => a.visit(f),
            Expr::Binary(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            _ => {}
        }
    }

    /// Evaluate elementwise on the host. `lookup` resolves variables to
    /// slices of equal length; element `i` of the result uses element `i`
    /// of every input.
    pub fn eval_host(&self, len: usize, lookup: &impl Fn(&str) -> Vec<f64>) -> Vec<f64> {
        match self {
            Expr::Load(name) => {
                let v = lookup(name);
                assert_eq!(v.len(), len, "variable '{name}' length");
                v
            }
            Expr::Const(c) => vec![*c; len],
            Expr::Unary(op, a) => {
                let av = a.eval_host(len, lookup);
                av.into_iter().map(|x| op.apply(x, 0.0, 0.0)).collect()
            }
            Expr::Binary(op, a, b) => {
                let av = a.eval_host(len, lookup);
                let bv = b.eval_host(len, lookup);
                av.into_iter().zip(bv).map(|(x, y)| op.apply(x, y, 0.0)).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Expr {
        // (a + b) * (c - d) + |a|
        Expr::var("a")
            .add(Expr::var("b"))
            .mul(Expr::var("c").sub(Expr::var("d")))
            .add(Expr::var("a").abs())
    }

    #[test]
    fn variables_in_first_use_order() {
        assert_eq!(sample().variables(), vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn op_count() {
        // add, mul, sub, add, abs
        assert_eq!(sample().op_count(), 5);
    }

    #[test]
    fn host_eval() {
        let lookup = |name: &str| -> Vec<f64> {
            match name {
                "a" => vec![-1.0, 2.0],
                "b" => vec![3.0, 4.0],
                "c" => vec![5.0, 6.0],
                "d" => vec![1.0, 1.0],
                _ => panic!(),
            }
        };
        let y = sample().eval_host(2, &lookup);
        assert_eq!(y[0], (-1.0 + 3.0) * (5.0 - 1.0) + 1.0);
        assert_eq!(y[1], (2.0 + 4.0) * (6.0 - 1.0) + 2.0);
    }

    #[test]
    fn constants_broadcast() {
        let e = Expr::var("a").mul(Expr::Const(2.5));
        let y = e.eval_host(3, &|_| vec![1.0, 2.0, 3.0]);
        assert_eq!(y, vec![2.5, 5.0, 7.5]);
    }
}
