//! The expression mapper: trees onto pipeline diagrams, §3-style.
//!
//! Two architecture rules dominate the mapping:
//!
//! * a memory plane supplies **one read stream per instruction** — when two
//!   operand variables share a plane, all but one must be *staged through a
//!   data cache* by an extra preceding instruction;
//! * a functional unit touches **one read plane** — when a binary unit
//!   would combine two direct plane streams, the second is routed through
//!   a COPY unit inside the same instruction (a unit-count cost, not a
//!   time cost).
//!
//! The number of staging instructions is therefore a direct function of
//! the allocation strategy — exactly the §3 claim that "the optimum layout
//! for one pipeline may be unworkable for the next".

use crate::alloc::AllocStrategy;
use crate::expr::Expr;
use nsc_arch::{AlsKind, CacheId, FuOp, InPort, KnowledgeBase};
use nsc_checker::Checker;
use nsc_diagram::{
    ControlNode, DmaAttrs, Document, FuAssign, IconId, IconKind, PadLoc, PadRef, PipelineDiagram,
};
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

/// Mapping cost accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Extra instructions that stage conflicting variables through caches.
    pub staging_instructions: usize,
    /// Functional units used by the main instruction (incl. copies).
    pub units_used: usize,
    /// COPY units inserted for the one-plane-per-unit rule.
    pub copies_inserted: usize,
}

/// Compile an expression into a document: zero or more cache-staging
/// instructions followed by the evaluating instruction storing to
/// `output`. Icons are bound before return; the document is ready for the
/// generator.
pub fn compile_expr(
    expr: &Expr,
    output: &str,
    len: u64,
    strategy: AllocStrategy,
    kb: &KnowledgeBase,
) -> (Document, CompileStats) {
    let vars = expr.variables();
    let decls = strategy.declare(&vars, output, len, kb.config().memory.planes);
    let mut doc = Document::new(format!("expr->{output} [{}]", strategy.label()));
    doc.decls = decls;
    let mut stats = CompileStats::default();

    // Per plane, the first variable keeps the read port; the rest are
    // staged through caches.
    let mut port_owner: BTreeMap<u8, String> = BTreeMap::new();
    let mut staged: BTreeMap<String, CacheId> = BTreeMap::new();
    for name in &vars {
        let plane = doc.decls.lookup(name).expect("declared").plane;
        match port_owner.entry(plane.0) {
            Entry::Occupied(_) => {
                let cache = CacheId(staged.len() as u8);
                assert!(kb.valid_cache(cache), "more conflicting variables than caches");
                staged.insert(name.clone(), cache);
            }
            Entry::Vacant(slot) => {
                slot.insert(name.clone());
            }
        }
    }

    // One staging instruction per conflicted variable.
    for (name, cache) in &staged {
        let pid = doc.add_pipeline(format!("stage {name} via {cache}"));
        let d = doc.pipeline_mut(pid).unwrap();
        d.stream_len = len;
        let mem = d.add_icon(IconKind::memory());
        let unit = d.add_icon(IconKind::als(AlsKind::Singlet));
        let cc = d.add_icon(IconKind::Cache { cache: Some(*cache) });
        d.connect(
            PadLoc::new(mem, PadRef::Io),
            PadLoc::new(unit, PadRef::FuIn { pos: 0, port: InPort::A }),
            Some(DmaAttrs::variable(name)),
        )
        .unwrap();
        d.assign_fu(unit, 0, FuAssign::unary(FuOp::Copy)).unwrap();
        d.connect(
            PadLoc::new(unit, PadRef::FuOut { pos: 0 }),
            PadLoc::new(cc, PadRef::Io),
            Some(DmaAttrs::at_address(0)),
        )
        .unwrap();
        stats.staging_instructions += 1;
    }

    // The main instruction.
    let pid = doc.add_pipeline("evaluate");
    let d = doc.pipeline_mut(pid).unwrap();
    d.stream_len = len;
    let mut cx = MapCx {
        d,
        staged: &staged,
        next_slot: 0,
        group_icons: BTreeMap::new(),
        var_pads: BTreeMap::new(),
        copies: 0,
    };
    let root = cx.lower(expr);
    let copies = cx.copies;
    let units = cx.next_slot;
    let root_attrs = root.attrs.clone();
    let mem_out = cx.d.add_icon(IconKind::memory());
    cx.d.connect(
        root.pad,
        PadLoc::new(mem_out, PadRef::Io),
        Some(DmaAttrs::variable(output).with_count(len)),
    )
    .unwrap();
    drop(root_attrs);
    stats.units_used = units;
    stats.copies_inserted = copies;

    doc.control = Some(ControlNode::Seq(
        doc.pipelines().iter().map(|p| ControlNode::Pipeline(p.id)).collect(),
    ));
    // Bind everything.
    let checker = Checker::new(kb.clone());
    let decls = doc.decls.clone();
    let ids: Vec<_> = doc.pipelines().iter().map(|p| p.id).collect();
    for id in ids {
        let diags = checker.auto_bind(doc.pipeline_mut(id).unwrap(), &decls);
        assert!(diags.is_empty(), "binding: {diags:?}");
    }
    (doc, stats)
}

/// A lowered subexpression: the pad its stream leaves from, the DMA
/// attributes every wire from that pad must carry (storage pads only), and
/// the variable name when the stream is a *direct plane read*.
#[derive(Clone)]
struct Lowered {
    pad: PadLoc,
    attrs: Option<DmaAttrs>,
    direct_var: Option<String>,
}

struct MapCx<'a> {
    d: &'a mut PipelineDiagram,
    staged: &'a BTreeMap<String, CacheId>,
    next_slot: usize,
    group_icons: BTreeMap<usize, IconId>,
    var_pads: BTreeMap<String, Lowered>,
    copies: usize,
}

impl<'a> MapCx<'a> {
    /// Allocate the next unit slot, creating ALS icons lazily.
    fn alloc_unit(&mut self) -> (IconId, u8) {
        let shapes = [
            (AlsKind::Triplet, 4usize, 3usize),
            (AlsKind::Doublet, 8, 2),
            (AlsKind::Singlet, 4, 1),
        ];
        let mut base = 0usize;
        for (kind, count, per) in shapes {
            for g in 0..count {
                let lo = base + g * per;
                let hi = lo + per;
                if self.next_slot >= lo && self.next_slot < hi {
                    let icon = *self
                        .group_icons
                        .entry(lo)
                        .or_insert_with(|| self.d.add_icon(IconKind::als(kind)));
                    let pos = (self.next_slot - lo) as u8;
                    self.next_slot += 1;
                    return (icon, pos);
                }
            }
            base += count * per;
        }
        panic!("expression needs more than 32 units; split it first");
    }

    fn lower(&mut self, e: &Expr) -> Lowered {
        match e {
            Expr::Load(name) => {
                if let Some(l) = self.var_pads.get(name) {
                    return l.clone();
                }
                let lowered = match self.staged.get(name) {
                    Some(cache) => {
                        let icon = self.d.add_icon(IconKind::Cache { cache: Some(*cache) });
                        Lowered {
                            pad: PadLoc::new(icon, PadRef::Io),
                            attrs: Some(DmaAttrs::at_address(0)),
                            direct_var: None,
                        }
                    }
                    None => {
                        let icon = self.d.add_icon(IconKind::memory());
                        Lowered {
                            pad: PadLoc::new(icon, PadRef::Io),
                            attrs: Some(DmaAttrs::variable(name)),
                            direct_var: Some(name.clone()),
                        }
                    }
                };
                self.var_pads.insert(name.clone(), lowered.clone());
                lowered
            }
            Expr::Const(_) => panic!("constants only as right operands of binary nodes"),
            Expr::Unary(op, a) => {
                let src = self.lower(a);
                let (icon, pos) = self.alloc_unit();
                self.d.assign_fu(icon, pos, FuAssign::unary(*op)).unwrap();
                self.d
                    .connect(
                        src.pad,
                        PadLoc::new(icon, PadRef::FuIn { pos, port: InPort::A }),
                        src.attrs,
                    )
                    .unwrap();
                Lowered {
                    pad: PadLoc::new(icon, PadRef::FuOut { pos }),
                    attrs: None,
                    direct_var: None,
                }
            }
            Expr::Binary(op, a, b) => {
                if let Expr::Const(c) = **b {
                    let src = self.lower(a);
                    let (icon, pos) = self.alloc_unit();
                    self.d.assign_fu(icon, pos, FuAssign::with_const(*op, c)).unwrap();
                    self.d
                        .connect(
                            src.pad,
                            PadLoc::new(icon, PadRef::FuIn { pos, port: InPort::A }),
                            src.attrs,
                        )
                        .unwrap();
                    return Lowered {
                        pad: PadLoc::new(icon, PadRef::FuOut { pos }),
                        attrs: None,
                        direct_var: None,
                    };
                }
                let la = self.lower(a);
                let mut lb = self.lower(b);
                // One read plane per unit: two *different* direct plane
                // streams cannot meet at one unit.
                if la.direct_var.is_some()
                    && lb.direct_var.is_some()
                    && la.direct_var != lb.direct_var
                {
                    let (ci, cp) = self.alloc_unit();
                    self.d.assign_fu(ci, cp, FuAssign::unary(FuOp::Copy)).unwrap();
                    self.d
                        .connect(
                            lb.pad,
                            PadLoc::new(ci, PadRef::FuIn { pos: cp, port: InPort::A }),
                            lb.attrs.clone(),
                        )
                        .unwrap();
                    lb = Lowered {
                        pad: PadLoc::new(ci, PadRef::FuOut { pos: cp }),
                        attrs: None,
                        direct_var: None,
                    };
                    self.copies += 1;
                }
                let (icon, pos) = self.alloc_unit();
                self.d.assign_fu(icon, pos, FuAssign::binary(*op)).unwrap();
                self.d
                    .connect(
                        la.pad,
                        PadLoc::new(icon, PadRef::FuIn { pos, port: InPort::A }),
                        la.attrs,
                    )
                    .unwrap();
                self.d
                    .connect(
                        lb.pad,
                        PadLoc::new(icon, PadRef::FuIn { pos, port: InPort::B }),
                        lb.attrs,
                    )
                    .unwrap();
                Lowered {
                    pad: PadLoc::new(icon, PadRef::FuOut { pos }),
                    attrs: None,
                    direct_var: None,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_codegen::generate;
    use nsc_sim::{NodeSim, RunOptions};
    use rand::{Rng, SeedableRng};

    fn sample_expr() -> Expr {
        // y = (a+b) * (c-d) + |a| * 0.5
        Expr::var("a")
            .add(Expr::var("b"))
            .mul(Expr::var("c").sub(Expr::var("d")))
            .add(Expr::var("a").abs().mul(Expr::Const(0.5)))
    }

    fn run_strategy(strategy: AllocStrategy, len: u64) -> (Vec<f64>, u64, CompileStats) {
        let kb = nsc_arch::KnowledgeBase::nsc_1988();
        let expr = sample_expr();
        let (doc, stats) = compile_expr(&expr, "y", len, strategy, &kb);
        let out = generate(&kb, &doc).expect("generates");
        let mut node = NodeSim::new(kb);
        // Load inputs at their declared addresses.
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut data: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for name in expr.variables() {
            let v: Vec<f64> = (0..len).map(|_| rng.random_range(-4.0..4.0)).collect();
            let decl = doc.decls.lookup(&name).unwrap();
            node.mem.plane_mut(decl.plane).write_slice(decl.base, &v);
            data.insert(name, v);
        }
        node.run_program(&out.program, &RunOptions::default()).expect("runs");
        let ydecl = doc.decls.lookup("y").unwrap();
        let y = node.mem.plane(ydecl.plane).read_vec(ydecl.base, len);
        // Host comparison.
        let host = expr.eval_host(len as usize, &|n| data[n].clone());
        for (s, h) in y.iter().zip(&host) {
            assert_eq!(s.to_bits(), h.to_bits(), "simulated expr must match host exactly");
        }
        (y, node.counters.cycles, stats)
    }

    #[test]
    fn round_robin_needs_no_staging() {
        let (_, _, stats) = run_strategy(AllocStrategy::RoundRobin, 64);
        assert_eq!(stats.staging_instructions, 0);
        assert!(stats.copies_inserted >= 1, "direct plane pairs still need copies");
    }

    #[test]
    fn one_plane_allocation_pays_staging_instructions() {
        let (_, _, stats) = run_strategy(AllocStrategy::AllInOnePlane, 64);
        // Four variables in one plane: three must be staged.
        assert_eq!(stats.staging_instructions, 3);
    }

    #[test]
    fn two_per_plane_is_in_between() {
        let (_, _, stats) = run_strategy(AllocStrategy::TwoPerPlane, 64);
        assert_eq!(stats.staging_instructions, 2, "one conflict per shared plane");
    }

    #[test]
    fn bad_allocation_costs_simulated_time() {
        let (_, t_bad, _) = run_strategy(AllocStrategy::AllInOnePlane, 512);
        let (_, t_good, _) = run_strategy(AllocStrategy::RoundRobin, 512);
        assert!(
            t_bad as f64 > 2.5 * t_good as f64,
            "staging must dominate: {t_bad} vs {t_good} cycles"
        );
    }

    #[test]
    fn all_strategies_agree_on_values() {
        let (a, _, _) = run_strategy(AllocStrategy::AllInOnePlane, 128);
        let (b, _, _) = run_strategy(AllocStrategy::RoundRobin, 128);
        let (c, _, _) = run_strategy(AllocStrategy::TwoPerPlane, 128);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }
}
