//! The 1988 prototype's output format: a pseudo-code dump of the semantic
//! data structures.
//!
//! Paper §4: "Since the final design of the NSC is not complete, and there
//! is no means of running actual NSC programs, the prototype produces only
//! the semantic data structures as output, rather than the actual
//! microcode instructions. The semantic data can be thought of as a
//! pseudo-code representation of the instructions." This module reproduces
//! that output (this reproduction *also* has the real generator and a
//! simulator, but the pseudo-code remains useful for review and for the
//! programming-effort accounting of experiment T3).

use nsc_diagram::{ControlNode, Document, IconKind, InputSpec, PipelineDiagram};
use std::fmt::Write as _;

/// Render the whole document as pseudo-code.
pub fn emit_pseudocode(doc: &Document) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "PROGRAM \"{}\"", doc.name);
    for v in &doc.decls.vars {
        let _ = writeln!(out, "DECL {} plane={} base={} len={}", v.name, v.plane, v.base, v.len);
    }
    for (ordinal, p) in doc.pipelines().iter().enumerate() {
        emit_pipeline(&mut out, ordinal, p);
    }
    if let Some(control) = &doc.control {
        let _ = writeln!(out, "CONTROL");
        emit_control(&mut out, doc, control, 1);
    }
    out
}

fn emit_pipeline(out: &mut String, ordinal: usize, p: &PipelineDiagram) {
    let _ = writeln!(out, "PIPELINE {ordinal} \"{}\" stream={} ; {}", p.name, p.stream_len, p.id);
    for icon in p.icons() {
        let binding = match icon.kind {
            IconKind::Als { als: Some(a), .. } => format!(" {a}"),
            IconKind::Memory { plane: Some(pl) } => format!(" {pl}"),
            IconKind::Cache { cache: Some(c) } => format!(" {c}"),
            IconKind::Sdu { sdu: Some(s) } => format!(" {s}"),
            _ => " unbound".to_string(),
        };
        let _ = writeln!(out, "  ICON {} {}{}", icon.id, icon.kind.palette_label(), binding);
        if matches!(icon.kind, IconKind::Sdu { .. }) {
            let taps = p.sdu_taps(icon.id);
            if !taps.is_empty() {
                let list: Vec<String> = taps.iter().map(u16::to_string).collect();
                let _ = writeln!(out, "    TAPS [{}]", list.join(","));
            }
        }
    }
    for c in p.connections() {
        let attrs = match &c.dma {
            Some(a) => format!("  [{a}]"),
            None => String::new(),
        };
        let _ = writeln!(out, "  WIRE {} -> {}{}", c.from, c.to, attrs);
    }
    for (icon, pos, a) in p.fu_assigns() {
        let _ = writeln!(
            out,
            "  FU {icon}.u{pos} {} a={} b={}",
            a.op.mnemonic(),
            spec_str(a.in_a),
            spec_str(a.in_b)
        );
    }
}

fn spec_str(s: InputSpec) -> String {
    match s {
        InputSpec::Wire => "wire".to_string(),
        InputSpec::DelayedWire { delay } => format!("wire>>{delay}"),
        InputSpec::Constant(v) => format!("const({v})"),
        InputSpec::Feedback { init } => format!("feedback({init})"),
        InputSpec::Unused => "-".to_string(),
    }
}

fn emit_control(out: &mut String, doc: &Document, node: &ControlNode, depth: usize) {
    let pad = "  ".repeat(depth);
    match node {
        ControlNode::Pipeline(id) => {
            let ordinal =
                doc.ordinal_of(*id).map(|o| o.to_string()).unwrap_or_else(|| "?".to_string());
            let _ = writeln!(out, "{pad}RUN pipeline {ordinal} ; {id}");
        }
        ControlNode::Seq(children) => {
            for c in children {
                emit_control(out, doc, c, depth);
            }
        }
        ControlNode::Repeat { times, body } => {
            let _ = writeln!(out, "{pad}REPEAT {times} TIMES");
            emit_control(out, doc, body, depth + 1);
            let _ = writeln!(out, "{pad}END");
        }
        ControlNode::RepeatUntil { cond, body } => {
            let _ = writeln!(
                out,
                "{pad}REPEAT UNTIL {}[{}] < {:e} (MAX {})",
                cond.cache, cond.offset, cond.threshold, cond.max_iters
            );
            emit_control(out, doc, body, depth + 1);
            let _ = writeln!(out, "{pad}END");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_arch::{AlsKind, CacheId, FuOp, InPort, PlaneId};
    use nsc_diagram::{ConvergenceCond, DmaAttrs, FuAssign, PadLoc, PadRef, VarDecl};

    #[test]
    fn pseudocode_covers_the_semantic_content() {
        let mut doc = Document::new("jacobi3d");
        doc.decls.declare(VarDecl { name: "u".into(), plane: PlaneId(0), base: 0, len: 1000 });
        let pid = doc.add_pipeline("sweep");
        let p = doc.pipeline_mut(pid).unwrap();
        p.stream_len = 1000;
        let m = p.add_icon(IconKind::Memory { plane: Some(PlaneId(0)) });
        let sdu = p.add_icon(IconKind::Sdu { sdu: Some(nsc_arch::SduId(0)) });
        let als = p.add_icon(IconKind::als(AlsKind::Doublet));
        p.set_sdu_taps(sdu, vec![0, 9]).unwrap();
        p.connect(
            PadLoc::new(m, PadRef::Io),
            PadLoc::new(sdu, PadRef::SduIn),
            Some(DmaAttrs::variable("u")),
        )
        .unwrap();
        p.connect(
            PadLoc::new(sdu, PadRef::SduTap { tap: 0 }),
            PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::A }),
            None,
        )
        .unwrap();
        p.assign_fu(als, 0, FuAssign::with_const(FuOp::Mul, 1.0 / 6.0)).unwrap();
        doc.control = Some(ControlNode::RepeatUntil {
            cond: ConvergenceCond { cache: CacheId(0), offset: 0, threshold: 1e-6, max_iters: 99 },
            body: Box::new(ControlNode::Pipeline(pid)),
        });

        let text = emit_pseudocode(&doc);
        assert!(text.contains("PROGRAM \"jacobi3d\""));
        assert!(text.contains("DECL u plane=MP0"));
        assert!(text.contains("PIPELINE 0 \"sweep\" stream=1000"));
        assert!(text.contains("ICON icon1 SHIFT/DLY SDU0"));
        assert!(text.contains("TAPS [0,9]"));
        assert!(text.contains("WIRE icon0.io -> icon1.in"));
        assert!(text.contains("[u+0 stride=1]"));
        assert!(text.contains("FU icon2.u0 MUL a=wire b=const(0.16666666666666666)"));
        assert!(text.contains("REPEAT UNTIL DC0[0] < 1e-6 (MAX 99)"));
        assert!(text.contains("RUN pipeline 0"));
    }

    #[test]
    fn unbound_icons_marked() {
        let mut doc = Document::new("t");
        let pid = doc.add_pipeline("p");
        doc.pipeline_mut(pid).unwrap().add_icon(IconKind::memory());
        let text = emit_pseudocode(&doc);
        assert!(text.contains("MEMORY unbound"));
    }
}
