//! Lowering one pipeline diagram to one microinstruction.

use crate::GenError;
use nsc_arch::{FuId, InPort, KnowledgeBase, SinkRef, SourceRef};
use nsc_checker::{diag::has_errors, rules, Stage};
use nsc_diagram::{
    CaptureMode, Declarations, DmaAttrs, IconId, IconKind, InputSpec, PadLoc, PadRef,
    PipelineDiagram, PipelineId,
};
use nsc_microcode::{
    CacheDmaField, FuField, FuInputSel, MicroInstruction, PlaneDmaField, SduField, WriteMode,
};
use std::collections::BTreeMap;

/// Metadata tying a generated instruction back to its diagram — consumed
/// by the visual debugger (paper §6's proposed extension) to annotate pads
/// with live values.
#[derive(Debug, Clone, PartialEq)]
pub struct InstrMap {
    /// The diagram this instruction was lowered from.
    pub pipeline: PipelineId,
    /// Physical functional unit of each programmed (icon, position).
    pub unit_to_fu: BTreeMap<(IconId, u8), FuId>,
    /// Elements each write actually stores (stream length minus warm-up).
    pub valid_count: u64,
    /// The automatically-derived warm-up skip applied to plain writes.
    pub write_skip: u64,
}

/// A lowered pipeline: the instruction plus its diagram back-references.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredPipeline {
    /// The machine instruction.
    pub instr: MicroInstruction,
    /// Back-references for debugging and annotation.
    pub map: InstrMap,
}

/// Lag bookkeeping for one stream edge: `transport` counts pipeline depths
/// crossed (functional-unit latencies, SDU transit), `intended` counts
/// semantic element shifts (SDU tap delays, user-requested queue delays).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct Lag {
    transport: u32,
    intended: u32,
}

/// Lower one diagram against the machine and document declarations.
pub fn lower_pipeline(
    kb: &KnowledgeBase,
    d: &PipelineDiagram,
    decls: &Declarations,
) -> Result<LoweredPipeline, GenError> {
    // "The checker is invoked again at this point."
    let diags = rules::check_pipeline_with(kb, d, Stage::Global, Some(decls));
    if has_errors(&diags) {
        return Err(GenError::CheckFailed(
            diags.into_iter().filter(|x| x.severity == nsc_checker::Severity::Error).collect(),
        ));
    }

    let layout = kb.layout();
    let mut ins = MicroInstruction::empty(kb);
    let mut unit_to_fu: BTreeMap<(IconId, u8), FuId> = BTreeMap::new();

    // ------------------------------------------------------------------
    // resolve physical units
    // ------------------------------------------------------------------
    for icon in d.icons() {
        if let IconKind::Als { als: Some(als_id), kind, mode } = icon.kind {
            let positions: Vec<u8> = match kind {
                nsc_arch::AlsKind::Doublet => {
                    mode.active_positions().iter().map(|&p| p as u8).collect()
                }
                k => (0..k.unit_count() as u8).collect(),
            };
            for pos in positions {
                unit_to_fu.insert((icon.id, pos), layout.als(als_id).fus[pos as usize]);
            }
        }
    }

    // ------------------------------------------------------------------
    // timing analysis: lag per icon output
    // ------------------------------------------------------------------
    // out_lags[(icon, pad)] = lag of the stream leaving that pad.
    let mut out_lags: BTreeMap<PadLoc, Lag> = BTreeMap::new();
    // Storage sources have zero lag by definition.
    for icon in d.icons() {
        if matches!(icon.kind, IconKind::Memory { .. } | IconKind::Cache { .. }) {
            out_lags.insert(PadLoc::new(icon.id, PadRef::Io), Lag::default());
        }
    }
    // Per-unit queue compensation chosen by the alignment pass.
    let mut compensation: BTreeMap<(IconId, u8, InPort), u32> = BTreeMap::new();

    // Relaxation over the (acyclic, checker-verified) dataflow graph.
    let assigns: Vec<(IconId, u8, nsc_diagram::FuAssign)> =
        d.fu_assigns().map(|(i, p, a)| (i, p, *a)).collect();
    let sdu_icons: Vec<IconId> =
        d.icons().filter(|i| matches!(i.kind, IconKind::Sdu { .. })).map(|i| i.id).collect();
    let lat = kb.config().latency;
    let max_rounds = assigns.len() + sdu_icons.len() + 2;
    for _ in 0..max_rounds {
        let mut progressed = false;
        // SDUs: input lag + transit, taps add intended delay.
        for &sid in &sdu_icons {
            let in_pad = PadLoc::new(sid, PadRef::SduIn);
            let Some(wire) = d.incoming(in_pad).first().map(|c| c.from) else { continue };
            let Some(&src) = out_lags.get(&wire) else { continue };
            let delays = d.sdu_taps(sid);
            for (t, &delay) in delays.iter().enumerate() {
                let pad = PadLoc::new(sid, PadRef::SduTap { tap: t as u8 });
                let lag = Lag {
                    transport: src.transport + lat.sdu_transit,
                    intended: src.intended + delay as u32,
                };
                if out_lags.insert(pad, lag) != Some(lag) {
                    progressed = true;
                }
            }
        }
        // Units: wired inputs must all be known; align, then publish output.
        for &(icon, pos, assign) in &assigns {
            let mut inputs: Vec<(InPort, Lag, u32)> = Vec::new(); // (port, lag, user delay)
            let mut ready = true;
            for (port, spec) in [(InPort::A, assign.in_a), (InPort::B, assign.in_b)] {
                if !spec.wants_wire() {
                    continue;
                }
                if assign.op.arity() == 1 && port == InPort::B {
                    continue;
                }
                let pad = PadLoc::new(icon, PadRef::FuIn { pos, port });
                let Some(wire) = d.incoming(pad).first().map(|c| c.from) else { continue };
                match out_lags.get(&wire) {
                    Some(&lag) => {
                        let user = match spec {
                            InputSpec::DelayedWire { delay } => delay as u32,
                            _ => 0,
                        };
                        inputs.push((port, lag, user));
                    }
                    None => ready = false,
                }
            }
            if !ready {
                continue;
            }
            // Align transports: every input is padded up to the deepest.
            let max_transport = inputs.iter().map(|(_, l, _)| l.transport).max().unwrap_or(0);
            let mut out_intended = 0;
            for &(port, lag, user) in &inputs {
                let comp = max_transport - lag.transport;
                compensation.insert((icon, pos, port), comp);
                out_intended = out_intended.max(lag.intended + user);
            }
            let out =
                Lag { transport: max_transport + lat.latency(assign.op), intended: out_intended };
            let pad = PadLoc::new(icon, PadRef::FuOut { pos });
            if out_lags.insert(pad, out) != Some(out) {
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    // ------------------------------------------------------------------
    // functional-unit fields
    // ------------------------------------------------------------------
    for &(icon, pos, assign) in &assigns {
        let Some(&fu) = unit_to_fu.get(&(icon, pos)) else {
            return Err(GenError::Unsupported(format!(
                "{icon}.u{pos} is programmed but its icon is unbound"
            )));
        };
        let mut field = FuField::active(assign.op);
        let mut preload: Option<f64> = None;
        let set_input = |spec: InputSpec,
                         port: InPort,
                         preload: &mut Option<f64>|
         -> Result<FuInputSel, GenError> {
            let comp = compensation.get(&(icon, pos, port)).copied().unwrap_or(0);
            Ok(match spec {
                InputSpec::Wire => {
                    if comp > 0 {
                        FuInputSel::Queue(queue_depth(icon, pos, comp, kb)?)
                    } else {
                        FuInputSel::Switch
                    }
                }
                InputSpec::DelayedWire { delay } => {
                    let total = delay as u32 + comp;
                    FuInputSel::Queue(queue_depth(icon, pos, total, kb)?)
                }
                InputSpec::Constant(v) => {
                    if preload.replace(v).is_some() {
                        return Err(GenError::PreloadConflict { icon, pos });
                    }
                    FuInputSel::Constant(0)
                }
                InputSpec::Feedback { init } => {
                    if preload.replace(init).is_some() {
                        return Err(GenError::PreloadConflict { icon, pos });
                    }
                    FuInputSel::Feedback(0)
                }
                InputSpec::Unused => FuInputSel::Constant(0),
            })
        };
        field.in_a = set_input(assign.in_a, InPort::A, &mut preload)?;
        field.in_b = set_input(assign.in_b, InPort::B, &mut preload)?;
        field.const_slot = 0;
        field.preload = preload;
        *ins.fu_mut(fu) = field;
    }

    // ------------------------------------------------------------------
    // switch program from the connection table
    // ------------------------------------------------------------------
    for c in d.connections() {
        let source = source_ref(d, c.from, &unit_to_fu)?;
        let sink = sink_ref(d, c.to, &unit_to_fu)?;
        ins.switch.route(kb, source, sink);
    }

    // ------------------------------------------------------------------
    // DMA descriptors (+ automatic write skip)
    // ------------------------------------------------------------------
    let stream_len = d.stream_len;
    let mut write_skip_max = 0u64;
    let mut valid_count = stream_len;
    for icon in d.icons() {
        let io = PadLoc::new(icon.id, PadRef::Io);
        match icon.kind {
            IconKind::Memory { plane: Some(p) } => {
                if let Some(wire) = d.outgoing(io).first() {
                    let attrs = wire.dma.as_ref().expect("checked");
                    let (base, stride, count) = resolve(attrs, decls, stream_len);
                    *ins.plane_rd_mut(p) = PlaneDmaField {
                        enabled: true,
                        base: base as u32,
                        stride: stride as i32,
                        count: count as u32,
                        skip: 0,
                        mode: WriteMode::Stream,
                    };
                }
                if let Some(wire) = d.incoming(io).first() {
                    let attrs = wire.dma.as_ref().expect("checked");
                    let lag = out_lags.get(&wire.from).copied().unwrap_or_default();
                    let (base, stride, count, warmup, mode) =
                        write_side(attrs, decls, stream_len, lag);
                    *ins.plane_wr_mut(p) = PlaneDmaField {
                        enabled: true,
                        base: base as u32,
                        stride: stride as i32,
                        count: count as u32,
                        skip: 0,
                        mode,
                    };
                    if mode == WriteMode::Stream {
                        write_skip_max = write_skip_max.max(warmup);
                        valid_count = valid_count.min(count);
                    }
                }
            }
            IconKind::Cache { cache: Some(cid) } => {
                if let Some(wire) = d.outgoing(io).first() {
                    let attrs = wire.dma.as_ref().expect("checked");
                    let (base, stride, count) = resolve(attrs, decls, stream_len);
                    *ins.cache_rd_mut(cid) = CacheDmaField {
                        enabled: true,
                        offset: base as u16,
                        stride: stride as i16,
                        count: count as u16,
                        skip: 0,
                        buffer: 0,
                        mode: WriteMode::Stream,
                    };
                }
                if let Some(wire) = d.incoming(io).first() {
                    let attrs = wire.dma.as_ref().expect("checked");
                    let lag = out_lags.get(&wire.from).copied().unwrap_or_default();
                    let (base, stride, count, warmup, mode) =
                        write_side(attrs, decls, stream_len, lag);
                    *ins.cache_wr_mut(cid) = CacheDmaField {
                        enabled: true,
                        offset: base as u16,
                        stride: stride as i16,
                        count: count as u16,
                        skip: 0,
                        buffer: 0,
                        mode,
                    };
                    if mode == WriteMode::Stream {
                        write_skip_max = write_skip_max.max(warmup);
                        valid_count = valid_count.min(count);
                    }
                }
            }
            IconKind::Sdu { sdu: Some(sid) } => {
                let delays = d.sdu_taps(icon.id);
                if !delays.is_empty() {
                    *ins.sdu_mut(sid) = SduField::with_delays(delays);
                }
            }
            _ => {}
        }
    }

    let map = InstrMap { pipeline: d.id, unit_to_fu, valid_count, write_skip: write_skip_max };
    Ok(LoweredPipeline { instr: ins, map })
}

/// Resolve DMA attributes to (base, stride, default count).
fn resolve(attrs: &DmaAttrs, decls: &Declarations, stream_len: u64) -> (u64, i64, u64) {
    let base = match &attrs.variable {
        Some(name) => decls.lookup(name).map(|v| v.base).unwrap_or(0) + attrs.offset,
        None => attrs.offset,
    };
    (base, attrs.stride, attrs.count.unwrap_or(stream_len))
}

/// Write-side descriptor pieces: base, stride, count, skip, mode.
fn write_side(
    attrs: &DmaAttrs,
    decls: &Declarations,
    stream_len: u64,
    lag: Lag,
) -> (u64, i64, u64, u64, WriteMode) {
    let (base, stride, _) = resolve(attrs, decls, stream_len);
    match attrs.mode {
        CaptureMode::LastOnly => (base, stride, attrs.count.unwrap_or(1), 0, WriteMode::LastOnly),
        CaptureMode::Stream => {
            // The first `intended` elements of the stream pair with
            // pre-stream data (stencil warm-up). The NSC datapath carries a
            // data-valid line with every word — DMA controllers, SDUs and
            // units all know their fill state — so warm-up slots arrive
            // invalid and are never stored; the generator only has to
            // shorten the stored count. (The encoded `skip` field remains
            // available for explicit sub-range stores.)
            let warmup = lag.intended as u64;
            let count = attrs.count.unwrap_or(stream_len.saturating_sub(warmup));
            (base, stride, count, warmup, WriteMode::Stream)
        }
    }
}

fn queue_depth(icon: IconId, pos: u8, depth: u32, kb: &KnowledgeBase) -> Result<u8, GenError> {
    let capacity = kb.config().rf_words;
    if depth as usize >= capacity {
        return Err(GenError::DelayOverflow { icon, pos, needed: depth, capacity });
    }
    Ok(depth as u8)
}

fn source_ref(
    d: &PipelineDiagram,
    loc: PadLoc,
    unit_to_fu: &BTreeMap<(IconId, u8), FuId>,
) -> Result<SourceRef, GenError> {
    let icon = d.icon(loc.icon).expect("checked");
    Ok(match (icon.kind, loc.pad) {
        (IconKind::Als { .. }, PadRef::FuOut { pos }) => {
            let fu = unit_to_fu
                .get(&(loc.icon, pos))
                .ok_or_else(|| GenError::Unsupported(format!("{loc} has no bound unit")))?;
            SourceRef::Fu(*fu)
        }
        (IconKind::Memory { plane: Some(p) }, PadRef::Io) => SourceRef::PlaneRead(p),
        (IconKind::Cache { cache: Some(c) }, PadRef::Io) => SourceRef::CacheRead(c),
        (IconKind::Sdu { sdu: Some(s) }, PadRef::SduTap { tap }) => SourceRef::SduTap(s, tap),
        _ => return Err(GenError::Unsupported(format!("cannot source a stream from {loc}"))),
    })
}

fn sink_ref(
    d: &PipelineDiagram,
    loc: PadLoc,
    unit_to_fu: &BTreeMap<(IconId, u8), FuId>,
) -> Result<SinkRef, GenError> {
    let icon = d.icon(loc.icon).expect("checked");
    Ok(match (icon.kind, loc.pad) {
        (IconKind::Als { .. }, PadRef::FuIn { pos, port }) => {
            let fu = unit_to_fu
                .get(&(loc.icon, pos))
                .ok_or_else(|| GenError::Unsupported(format!("{loc} has no bound unit")))?;
            SinkRef::FuIn(*fu, port)
        }
        (IconKind::Memory { plane: Some(p) }, PadRef::Io) => SinkRef::PlaneWrite(p),
        (IconKind::Cache { cache: Some(c) }, PadRef::Io) => SinkRef::CacheWrite(c),
        (IconKind::Sdu { sdu: Some(s) }, PadRef::SduIn) => SinkRef::SduIn(s),
        _ => return Err(GenError::Unsupported(format!("cannot sink a stream into {loc}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_arch::{AlsKind, FuOp};
    use nsc_diagram::FuAssign;

    fn kb() -> KnowledgeBase {
        KnowledgeBase::nsc_1988()
    }

    /// MP0 --> [mul x2] --> MP1, 64 elements.
    fn scale_pipeline(kb: &KnowledgeBase) -> (PipelineDiagram, Declarations) {
        let mut d = PipelineDiagram::new(PipelineId(0), "scale");
        d.stream_len = 64;
        let src = d.add_icon(IconKind::Memory { plane: Some(nsc_arch::PlaneId(0)) });
        let als = d.add_icon(IconKind::als(AlsKind::Singlet));
        let dst = d.add_icon(IconKind::Memory { plane: Some(nsc_arch::PlaneId(1)) });
        nsc_checker::auto_bind(kb, &mut d, &Declarations::default());
        d.connect(
            PadLoc::new(src, PadRef::Io),
            PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::A }),
            Some(DmaAttrs::at_address(0)),
        )
        .unwrap();
        d.connect(
            PadLoc::new(als, PadRef::FuOut { pos: 0 }),
            PadLoc::new(dst, PadRef::Io),
            Some(DmaAttrs::at_address(128)),
        )
        .unwrap();
        d.assign_fu(als, 0, FuAssign::with_const(FuOp::Mul, 2.0)).unwrap();
        (d, Declarations::default())
    }

    #[test]
    fn lowers_a_simple_scale_pipeline() {
        let kb = kb();
        let (d, decls) = scale_pipeline(&kb);
        let low = lower_pipeline(&kb, &d, &decls).expect("lowering succeeds");
        let ins = &low.instr;
        // One enabled FU with constant operand and preload.
        let active: Vec<FuId> = ins.enabled_fus().collect();
        assert_eq!(active.len(), 1);
        let f = ins.fu(active[0]);
        assert_eq!(f.op, FuOp::Mul);
        assert_eq!(f.in_a, FuInputSel::Switch);
        assert_eq!(f.in_b, FuInputSel::Constant(0));
        assert_eq!(f.preload, Some(2.0));
        // DMA on both sides.
        assert!(ins.plane_rd[0].enabled && ins.plane_rd[0].count == 64);
        assert!(ins.plane_wr[1].enabled && ins.plane_wr[1].count == 64);
        assert_eq!(ins.plane_wr[1].base, 128);
        assert_eq!(ins.plane_wr[1].skip, 0, "no stencil, no warm-up");
        // Switch routes both wires.
        assert_eq!(ins.switch.iter_routes(&kb).count(), 2);
        assert_eq!(low.map.valid_count, 64);
    }

    #[test]
    fn checker_errors_block_lowering() {
        let kb = kb();
        let (mut d, decls) = scale_pipeline(&kb);
        // Sabotage: second writer into the same plane.
        let als2 = d.add_icon(IconKind::als(AlsKind::Singlet));
        nsc_checker::auto_bind(&kb, &mut d, &decls);
        let dst2 = d.add_icon(IconKind::Memory { plane: Some(nsc_arch::PlaneId(1)) });
        d.connect(
            PadLoc::new(als2, PadRef::FuOut { pos: 0 }),
            PadLoc::new(dst2, PadRef::Io),
            Some(DmaAttrs::at_address(999)),
        )
        .unwrap();
        d.assign_fu(als2, 0, FuAssign::unary(FuOp::Abs)).unwrap();
        match lower_pipeline(&kb, &d, &decls) {
            Err(GenError::CheckFailed(diags)) => {
                assert!(diags.iter().any(|x| x.rule == nsc_checker::RuleCode::PlaneContention));
            }
            other => panic!("expected CheckFailed, got {other:?}"),
        }
    }

    #[test]
    fn alignment_inserts_queues_for_unbalanced_paths() {
        // MP0 feeds both a direct path and a two-FU path into a final add:
        //   MP0 -> copy -> sub -+
        //   MP0 ---------------+-> add -> MP1
        // The direct input must receive a queue of (copy+sub latency).
        let kb = kb();
        let mut d = PipelineDiagram::new(PipelineId(0), "balance");
        d.stream_len = 32;
        let src = d.add_icon(IconKind::Memory { plane: Some(nsc_arch::PlaneId(0)) });
        let chain = d.add_icon(IconKind::als(AlsKind::Doublet));
        let last = d.add_icon(IconKind::als(AlsKind::Singlet));
        let dst = d.add_icon(IconKind::Memory { plane: Some(nsc_arch::PlaneId(1)) });
        nsc_checker::auto_bind(&kb, &mut d, &Declarations::default());
        // src -> chain.u0 (copy) -> chain.u1 (abs) -> last.inA
        d.connect(
            PadLoc::new(src, PadRef::Io),
            PadLoc::new(chain, PadRef::FuIn { pos: 0, port: InPort::A }),
            Some(DmaAttrs::at_address(0)),
        )
        .unwrap();
        d.connect(
            PadLoc::new(chain, PadRef::FuOut { pos: 0 }),
            PadLoc::new(chain, PadRef::FuIn { pos: 1, port: InPort::A }),
            None,
        )
        .unwrap();
        d.connect(
            PadLoc::new(chain, PadRef::FuOut { pos: 1 }),
            PadLoc::new(last, PadRef::FuIn { pos: 0, port: InPort::A }),
            None,
        )
        .unwrap();
        // src -> last.inB directly (same plane stream fanned out).
        d.connect(
            PadLoc::new(src, PadRef::Io),
            PadLoc::new(last, PadRef::FuIn { pos: 0, port: InPort::B }),
            Some(DmaAttrs::at_address(0)),
        )
        .unwrap();
        d.connect(
            PadLoc::new(last, PadRef::FuOut { pos: 0 }),
            PadLoc::new(dst, PadRef::Io),
            Some(DmaAttrs::at_address(0)),
        )
        .unwrap();
        d.assign_fu(chain, 0, FuAssign::unary(FuOp::Copy)).unwrap();
        d.assign_fu(chain, 1, FuAssign::unary(FuOp::Abs)).unwrap();
        d.assign_fu(last, 0, FuAssign::binary(FuOp::Add)).unwrap();
        let low = lower_pipeline(&kb, &d, &Declarations::default()).expect("lowers");
        let fu_last = low.map.unit_to_fu[&(last, 0)];
        let f = low.instr.fu(fu_last);
        // copy(3) + abs(3) = 6 cycles of transport on input A; input B is
        // direct and needs a 6-deep queue.
        assert_eq!(f.in_a, FuInputSel::Switch);
        assert_eq!(f.in_b, FuInputSel::Queue(6), "compensation queue");
    }

    #[test]
    fn sdu_taps_shift_streams_and_set_write_skip() {
        // MP0 -> SDU(taps 0, 8) -> sub -> MP1: a first-difference stencil
        // u[i+8] - u[i]; the first 8 outputs are warm-up and must be
        // skipped by the write DMA.
        let kb = kb();
        let mut d = PipelineDiagram::new(PipelineId(0), "diff");
        d.stream_len = 64;
        let src = d.add_icon(IconKind::Memory { plane: Some(nsc_arch::PlaneId(0)) });
        let sdu = d.add_icon(IconKind::sdu());
        let als = d.add_icon(IconKind::als(AlsKind::Singlet));
        let dst = d.add_icon(IconKind::Memory { plane: Some(nsc_arch::PlaneId(1)) });
        nsc_checker::auto_bind(&kb, &mut d, &Declarations::default());
        d.set_sdu_taps(sdu, vec![0, 8]).unwrap();
        d.connect(
            PadLoc::new(src, PadRef::Io),
            PadLoc::new(sdu, PadRef::SduIn),
            Some(DmaAttrs::at_address(0)),
        )
        .unwrap();
        d.connect(
            PadLoc::new(sdu, PadRef::SduTap { tap: 0 }),
            PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::A }),
            None,
        )
        .unwrap();
        d.connect(
            PadLoc::new(sdu, PadRef::SduTap { tap: 1 }),
            PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::B }),
            None,
        )
        .unwrap();
        d.connect(
            PadLoc::new(als, PadRef::FuOut { pos: 0 }),
            PadLoc::new(dst, PadRef::Io),
            Some(DmaAttrs::at_address(0)),
        )
        .unwrap();
        d.assign_fu(als, 0, FuAssign::binary(FuOp::Sub)).unwrap();
        let low = lower_pipeline(&kb, &d, &Declarations::default()).expect("lowers");
        let ins = &low.instr;
        // Both taps have the same transport lag: no compensation queues.
        let fu = low.map.unit_to_fu[&(als, 0)];
        assert_eq!(ins.fu(fu).in_a, FuInputSel::Switch);
        assert_eq!(ins.fu(fu).in_b, FuInputSel::Switch);
        // The SDU is programmed.
        assert!(ins.sdus[0].enabled);
        assert_eq!(ins.sdus[0].taps[1].delay, 8);
        // Warm-up elements arrive data-invalid; the write stores 56.
        assert_eq!(ins.plane_wr[1].skip, 0, "validity lines filter warm-up");
        assert_eq!(ins.plane_wr[1].count, 56);
        assert_eq!(low.map.valid_count, 56);
        assert_eq!(low.map.write_skip, 8);
    }

    #[test]
    fn variables_resolve_through_declarations() {
        let kb = kb();
        let mut decls = Declarations::default();
        decls.declare(nsc_diagram::VarDecl {
            name: "u".into(),
            plane: nsc_arch::PlaneId(3),
            base: 1000,
            len: 64,
        });
        let mut d = PipelineDiagram::new(PipelineId(0), "var");
        d.stream_len = 64;
        let src = d.add_icon(IconKind::memory());
        let als = d.add_icon(IconKind::als(AlsKind::Singlet));
        let dst = d.add_icon(IconKind::Memory { plane: Some(nsc_arch::PlaneId(1)) });
        d.connect(
            PadLoc::new(src, PadRef::Io),
            PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::A }),
            Some(DmaAttrs::variable("u")),
        )
        .unwrap();
        d.connect(
            PadLoc::new(als, PadRef::FuOut { pos: 0 }),
            PadLoc::new(dst, PadRef::Io),
            Some(DmaAttrs::at_address(0)),
        )
        .unwrap();
        d.assign_fu(als, 0, FuAssign::unary(FuOp::Sqrt)).unwrap();
        nsc_checker::auto_bind(&kb, &mut d, &decls);
        let low = lower_pipeline(&kb, &d, &decls).expect("lowers");
        // The binder put the source icon on the variable's plane, and the
        // DMA base resolved to the variable's address.
        assert!(low.instr.plane_rd[3].enabled);
        assert_eq!(low.instr.plane_rd[3].base, 1000);
    }

    #[test]
    fn reduction_feedback_lowered_with_seed() {
        let kb = kb();
        let mut d = PipelineDiagram::new(PipelineId(0), "norm");
        d.stream_len = 128;
        let src = d.add_icon(IconKind::Memory { plane: Some(nsc_arch::PlaneId(0)) });
        let als = d.add_icon(IconKind::als(AlsKind::Singlet));
        let cache = d.add_icon(IconKind::Cache { cache: Some(nsc_arch::CacheId(0)) });
        nsc_checker::auto_bind(&kb, &mut d, &Declarations::default());
        d.connect(
            PadLoc::new(src, PadRef::Io),
            PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::A }),
            Some(DmaAttrs::at_address(0)),
        )
        .unwrap();
        d.connect(
            PadLoc::new(als, PadRef::FuOut { pos: 0 }),
            PadLoc::new(cache, PadRef::Io),
            Some(DmaAttrs::at_address(0).last_only()),
        )
        .unwrap();
        d.assign_fu(als, 0, FuAssign::reduction(FuOp::MaxAbs, 0.0)).unwrap();
        let low = lower_pipeline(&kb, &d, &Declarations::default()).expect("lowers");
        let fu = low.map.unit_to_fu[&(als, 0)];
        let f = low.instr.fu(fu);
        assert_eq!(f.in_b, FuInputSel::Feedback(0));
        assert_eq!(f.preload, Some(0.0));
        // Scalar capture on the cache.
        assert!(low.instr.cache_wr[0].enabled);
        assert_eq!(low.instr.cache_wr[0].count, 1);
        assert_eq!(low.instr.cache_wr[0].mode, WriteMode::LastOnly);
    }

    #[test]
    fn preload_conflict_reported() {
        let kb = kb();
        let mut d = PipelineDiagram::new(PipelineId(0), "bad");
        d.stream_len = 8;
        let als = d.add_icon(IconKind::als(AlsKind::Singlet));
        let dst = d.add_icon(IconKind::Memory { plane: Some(nsc_arch::PlaneId(0)) });
        nsc_checker::auto_bind(&kb, &mut d, &Declarations::default());
        d.connect(
            PadLoc::new(als, PadRef::FuOut { pos: 0 }),
            PadLoc::new(dst, PadRef::Io),
            Some(DmaAttrs::at_address(0)),
        )
        .unwrap();
        // Two constants on one unit: the register file preloads one word.
        d.assign_fu(
            als,
            0,
            nsc_diagram::FuAssign {
                op: FuOp::Add,
                in_a: InputSpec::Constant(1.0),
                in_b: InputSpec::Constant(2.0),
            },
        )
        .unwrap();
        match lower_pipeline(&kb, &d, &Declarations::default()) {
            Err(GenError::PreloadConflict { .. }) => {}
            other => panic!("expected PreloadConflict, got {other:?}"),
        }
    }
}
