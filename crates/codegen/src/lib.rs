//! # nsc-codegen — the microcode generator
//!
//! Paper §4: "Once a complete program (or consistent program fragment) has
//! been defined, the microcode generator uses the semantic data structures
//! created by the graphical editor to generate machine code for the NSC.
//! The checker is invoked again at this point to perform a thorough check
//! of global constraints and other conditions which may not be practical to
//! check during the editing process."
//!
//! And §5: "The microcode generator would later derive switch settings by
//! interrogating the connection tables built by the graphical editor."
//!
//! Lowering one pipeline diagram to one [`MicroInstruction`](nsc_microcode::MicroInstruction) involves:
//!
//! 1. re-running the checker globally (refusing on any error);
//! 2. resolving every icon's physical binding and every unit's [`FuId`](nsc_arch::FuId);
//! 3. deriving the switch program from the connection table;
//! 4. **timing analysis**: computing each stream's *transport lag* (pipeline
//!    depths crossed) separately from its *intended lag* (stencil tap
//!    offsets and user-requested delays), and inserting register-file
//!    circular-queue delays so that every functional unit pairs the
//!    elements the diagram means it to pair — the paper's "timing delays,
//!    needed for proper alignment of vector streams";
//! 5. programming the DMA controllers, including the automatically-derived
//!    write-side `skip` that discards stencil warm-up elements;
//! 6. assembling the sequencer program from the document's control-flow
//!    tree (counted loops and residual-convergence loops).
//!
//! The 1988 prototype stopped before this stage and emitted "only the
//! semantic data structures ... a pseudo-code representation of the
//! instructions"; [`pseudo::emit_pseudocode`] reproduces that output too.

pub mod control;
pub mod lower;
pub mod pseudo;

pub use self::control::{generate, generate_prechecked, GenOutput};
pub use self::lower::{lower_pipeline, InstrMap, LoweredPipeline};
pub use self::pseudo::emit_pseudocode;

use nsc_checker::Diagnostic;
use nsc_diagram::IconId;
use std::fmt;

/// Errors the generator can report.
#[derive(Debug, Clone, PartialEq)]
pub enum GenError {
    /// The global checker pass found errors; codegen refuses to proceed.
    CheckFailed(Vec<Diagnostic>),
    /// Stream alignment needs a deeper register-file queue than exists.
    DelayOverflow {
        /// Icon holding the unit.
        icon: IconId,
        /// Unit position within the icon.
        pos: u8,
        /// Queue depth the alignment would need.
        needed: u32,
        /// Register-file capacity.
        capacity: usize,
    },
    /// A unit needs two register-file preloads (two constants, or a
    /// constant and a feedback seed); the register file loads one per
    /// instruction.
    PreloadConflict {
        /// Icon holding the unit.
        icon: IconId,
        /// Unit position within the icon.
        pos: u8,
    },
    /// The document has no instructions to emit.
    EmptyProgram,
    /// A diagram shape the generator cannot lower.
    Unsupported(String),
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::CheckFailed(diags) => {
                writeln!(f, "global check failed with {} finding(s):", diags.len())?;
                for d in diags {
                    writeln!(f, "  {d}")?;
                }
                Ok(())
            }
            GenError::DelayOverflow { icon, pos, needed, capacity } => write!(
                f,
                "aligning streams at {icon}.u{pos} needs a {needed}-deep queue; \
                 the register file holds {capacity} words"
            ),
            GenError::PreloadConflict { icon, pos } => write!(
                f,
                "{icon}.u{pos} needs two register-file preloads; only one loads per instruction"
            ),
            GenError::EmptyProgram => write!(f, "document contains no instructions"),
            GenError::Unsupported(msg) => write!(f, "unsupported diagram shape: {msg}"),
        }
    }
}

impl std::error::Error for GenError {}
