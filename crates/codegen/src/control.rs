//! Assembling whole programs: control flow to sequencer fields.
//!
//! The document's control tree (fixed-count loops and residual-convergence
//! loops) lowers onto the sequencer model of §2: "A central sequencer
//! provides high-level control flow ... An elaborate interrupt scheme is
//! used to signal pipeline completions \[and\] evaluate conditional
//! expressions." Every loop gets a one-instruction *header* that presets a
//! loop counter; the final body instruction carries the decrement-and-
//! branch (and, for convergence loops, the interrupt-evaluated comparison
//! against the residual scalar in a cache).

use crate::lower::{lower_pipeline, InstrMap, LoweredPipeline};
use crate::GenError;
use nsc_arch::KnowledgeBase;
use nsc_checker::diag::has_errors;
use nsc_diagram::{ControlNode, Document, PipelineId};
use nsc_microcode::{CmpKind, CondBranch, MicroInstruction, MicroProgram, ProgramBuilder, SeqCtl};
use std::collections::BTreeMap;

/// A generated program plus per-instruction diagram back-references.
#[derive(Debug, Clone, PartialEq)]
pub struct GenOutput {
    /// The executable microcode.
    pub program: MicroProgram,
    /// For each instruction index, the diagram it came from (headers get
    /// `None`).
    pub maps: Vec<Option<InstrMap>>,
}

/// Generate microcode for a whole document.
pub fn generate(kb: &KnowledgeBase, doc: &Document) -> Result<GenOutput, GenError> {
    // Whole-document check first (control refs, declarations).
    let diags = nsc_checker::rules::check_document(kb, doc);
    if has_errors(&diags) {
        return Err(GenError::CheckFailed(
            diags.into_iter().filter(|d| d.severity == nsc_checker::Severity::Error).collect(),
        ));
    }
    generate_prechecked(kb, doc)
}

/// Generate microcode for a document the caller has *already* passed
/// through the whole-document global check. Skipping the redundant
/// re-check matters to drivers that compile in bulk; on an unchecked
/// document the lowering may surface errors in degraded form or panic,
/// so only call this with a clean check in hand.
pub fn generate_prechecked(kb: &KnowledgeBase, doc: &Document) -> Result<GenOutput, GenError> {
    // Lower every pipeline that the control flow references (or all, in
    // order, when no control flow is specified).
    let control = match &doc.control {
        Some(c) => c.clone(),
        None => {
            ControlNode::Seq(doc.pipelines().iter().map(|p| ControlNode::Pipeline(p.id)).collect())
        }
    };
    let mut lowered: BTreeMap<PipelineId, LoweredPipeline> = BTreeMap::new();
    for id in control.referenced_pipelines() {
        let d = doc.pipeline(id).expect("checked");
        lowered.insert(id, lower_pipeline(kb, d, &doc.decls)?);
    }

    let mut asm = Assembler {
        kb,
        builder: ProgramBuilder::new(kb, doc.name.clone()),
        maps: Vec::new(),
        lowered: &lowered,
        next_counter: 0,
    };
    asm.emit(&control)?;
    if asm.maps.is_empty() {
        return Err(GenError::EmptyProgram);
    }
    // Explicit halt at the end.
    let last = asm.maps.len() - 1;
    if asm.builder.instr_mut(last).seq.ctl == SeqCtl::Next {
        asm.builder.instr_mut(last).seq.ctl = SeqCtl::Halt;
    }
    Ok(GenOutput { program: asm.builder.finish(), maps: asm.maps })
}

struct Assembler<'a> {
    kb: &'a KnowledgeBase,
    builder: ProgramBuilder,
    maps: Vec<Option<InstrMap>>,
    lowered: &'a BTreeMap<PipelineId, LoweredPipeline>,
    next_counter: u8,
}

impl<'a> Assembler<'a> {
    fn alloc_counter(&mut self) -> Result<u8, GenError> {
        if self.next_counter >= 16 {
            return Err(GenError::Unsupported(
                "more than 16 nested/sequential loops need counter reuse".to_string(),
            ));
        }
        let c = self.next_counter;
        self.next_counter += 1;
        Ok(c)
    }

    /// Index of the instruction that will carry a loop's closing branch.
    /// If the body's final instruction already owns a branch (it closes an
    /// inner loop), an idle *loop tail* is appended to carry this one.
    fn closing_slot(&mut self, needs_cond: bool) -> usize {
        let last = self.builder.next_index() - 1;
        let ins = self.builder.instr_mut(last);
        let free = ins.seq.ctl == SeqCtl::Next && (!needs_cond || ins.seq.cond.is_none());
        if free {
            last
        } else {
            self.builder.label("loop tail");
            self.builder.push(MicroInstruction::empty(self.kb));
            self.maps.push(None);
            self.builder.next_index() - 1
        }
    }

    fn emit(&mut self, node: &ControlNode) -> Result<(), GenError> {
        match node {
            ControlNode::Pipeline(id) => {
                let low = &self.lowered[id];
                self.builder.push(low.instr.clone());
                self.maps.push(Some(low.map.clone()));
                Ok(())
            }
            ControlNode::Seq(children) => {
                for c in children {
                    self.emit(c)?;
                }
                Ok(())
            }
            ControlNode::Repeat { times, body } => {
                if *times == 0 {
                    return Ok(());
                }
                let ctr = self.alloc_counter()?;
                // Loop header: an idle instruction that presets the counter.
                let mut header = MicroInstruction::empty(self.kb);
                header.seq.set_counter = Some((ctr, *times));
                self.builder.label(format!("repeat x{times}"));
                self.builder.push(header);
                self.maps.push(None);
                let start = self.builder.next_index();
                self.emit(body)?;
                if self.builder.next_index() == start {
                    return Err(GenError::EmptyProgram);
                }
                let closer = self.closing_slot(false);
                let end = self.builder.next_index();
                self.builder.instr_mut(closer).seq.ctl =
                    SeqCtl::DecJnz { ctr, target: start as u16 };
                debug_assert!(closer == end - 1);
                Ok(())
            }
            ControlNode::RepeatUntil { cond, body } => {
                let ctr = self.alloc_counter()?;
                let mut header = MicroInstruction::empty(self.kb);
                header.seq.set_counter = Some((ctr, cond.max_iters));
                self.builder.label(format!(
                    "repeat until {}[{}] < {:e} (max {})",
                    cond.cache, cond.offset, cond.threshold, cond.max_iters
                ));
                self.builder.push(header);
                self.maps.push(None);
                let start = self.builder.next_index();
                self.emit(body)?;
                if self.builder.next_index() == start {
                    return Err(GenError::EmptyProgram);
                }
                let closer = self.closing_slot(true);
                let end = self.builder.next_index();
                // Converged? fall out (branch past the loop). Otherwise
                // keep looping while the iteration counter lasts.
                let last = self.builder.instr_mut(closer);
                last.seq.cond = Some(CondBranch {
                    cache: cond.cache,
                    offset: cond.offset,
                    cmp: CmpKind::Lt,
                    threshold: cond.threshold,
                    target: end as u16,
                });
                last.seq.ctl = SeqCtl::DecJnz { ctr, target: start as u16 };
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_arch::{AlsKind, FuOp, InPort, PlaneId};
    use nsc_diagram::{
        ConvergenceCond, Declarations, DmaAttrs, FuAssign, IconKind, PadLoc, PadRef,
    };

    fn kb() -> KnowledgeBase {
        KnowledgeBase::nsc_1988()
    }

    /// A document with one trivial pipeline (MP0 -> abs -> MP1).
    fn doc_with_pipeline(kb: &KnowledgeBase) -> (Document, PipelineId) {
        let mut doc = Document::new("prog");
        let pid = doc.add_pipeline("abs");
        let d = doc.pipeline_mut(pid).unwrap();
        d.stream_len = 16;
        let src = d.add_icon(IconKind::Memory { plane: Some(PlaneId(0)) });
        let als = d.add_icon(IconKind::als(AlsKind::Singlet));
        let dst = d.add_icon(IconKind::Memory { plane: Some(PlaneId(1)) });
        d.connect(
            PadLoc::new(src, PadRef::Io),
            PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::A }),
            Some(DmaAttrs::at_address(0)),
        )
        .unwrap();
        d.connect(
            PadLoc::new(als, PadRef::FuOut { pos: 0 }),
            PadLoc::new(dst, PadRef::Io),
            Some(DmaAttrs::at_address(0)),
        )
        .unwrap();
        d.assign_fu(als, 0, FuAssign::unary(FuOp::Abs)).unwrap();
        nsc_checker::auto_bind(kb, doc.pipeline_mut(pid).unwrap(), &Declarations::default());
        (doc, pid)
    }

    #[test]
    fn no_control_flow_means_run_in_order_once() {
        let kb = kb();
        let (doc, _) = doc_with_pipeline(&kb);
        let out = generate(&kb, &doc).expect("generates");
        assert_eq!(out.program.len(), 1);
        assert_eq!(out.program.instrs[0].seq.ctl, SeqCtl::Halt);
        assert!(out.maps[0].is_some());
    }

    #[test]
    fn counted_loop_gets_header_and_backedge() {
        let kb = kb();
        let (mut doc, pid) = doc_with_pipeline(&kb);
        doc.control =
            Some(ControlNode::Repeat { times: 10, body: Box::new(ControlNode::Pipeline(pid)) });
        let out = generate(&kb, &doc).expect("generates");
        assert_eq!(out.program.len(), 2, "header + body");
        assert_eq!(out.program.instrs[0].seq.set_counter, Some((0, 10)));
        assert!(out.maps[0].is_none(), "header has no diagram");
        assert_eq!(out.program.instrs[1].seq.ctl, SeqCtl::DecJnz { ctr: 0, target: 1 });
    }

    #[test]
    fn convergence_loop_carries_the_interrupt_comparison() {
        let kb = kb();
        let (mut doc, pid) = doc_with_pipeline(&kb);
        doc.control = Some(ControlNode::RepeatUntil {
            cond: ConvergenceCond {
                cache: nsc_arch::CacheId(0),
                offset: 0,
                threshold: 1e-6,
                max_iters: 500,
            },
            body: Box::new(ControlNode::Pipeline(pid)),
        });
        let out = generate(&kb, &doc).expect("generates");
        assert_eq!(out.program.len(), 2);
        let last = &out.program.instrs[1];
        let cond = last.seq.cond.expect("conditional branch");
        assert_eq!(cond.cmp, CmpKind::Lt);
        assert_eq!(cond.threshold, 1e-6);
        assert_eq!(cond.target, 2, "converged -> fall past the loop");
        assert_eq!(last.seq.ctl, SeqCtl::DecJnz { ctr: 0, target: 1 });
        assert_eq!(out.program.instrs[0].seq.set_counter, Some((0, 500)));
    }

    #[test]
    fn nested_loops_use_distinct_counters() {
        let kb = kb();
        let (mut doc, pid) = doc_with_pipeline(&kb);
        doc.control = Some(ControlNode::Repeat {
            times: 3,
            body: Box::new(ControlNode::Repeat {
                times: 5,
                body: Box::new(ControlNode::Pipeline(pid)),
            }),
        });
        let out = generate(&kb, &doc).expect("generates");
        // outer header, inner header, body, outer loop tail
        assert_eq!(out.program.len(), 4);
        assert_eq!(out.program.instrs[0].seq.set_counter, Some((0, 3)));
        assert_eq!(out.program.instrs[1].seq.set_counter, Some((1, 5)));
        // The body closes the inner loop...
        assert_eq!(out.program.instrs[2].seq.ctl, SeqCtl::DecJnz { ctr: 1, target: 2 });
        // ...and an idle tail closes the outer one, targeting the *inner
        // header* so the inner counter re-arms each outer pass.
        assert_eq!(out.program.instrs[3].seq.ctl, SeqCtl::DecJnz { ctr: 0, target: 1 });
    }

    #[test]
    fn dangling_control_reference_fails_generation() {
        let kb = kb();
        let (mut doc, _) = doc_with_pipeline(&kb);
        doc.control = Some(ControlNode::Pipeline(PipelineId(404)));
        match generate(&kb, &doc) {
            Err(GenError::CheckFailed(diags)) => {
                assert!(diags.iter().any(|d| d.rule == nsc_checker::RuleCode::DanglingControlRef));
            }
            other => panic!("expected CheckFailed, got {other:?}"),
        }
    }

    #[test]
    fn empty_document_reports() {
        let kb = kb();
        let doc = Document::new("empty");
        match generate(&kb, &doc) {
            Err(GenError::EmptyProgram) => {}
            other => panic!("expected EmptyProgram, got {other:?}"),
        }
    }

    #[test]
    fn zero_trip_loops_vanish() {
        let kb = kb();
        let (mut doc, pid) = doc_with_pipeline(&kb);
        doc.control = Some(ControlNode::Seq(vec![
            ControlNode::Repeat { times: 0, body: Box::new(ControlNode::Pipeline(pid)) },
            ControlNode::Pipeline(pid),
        ]));
        let out = generate(&kb, &doc).expect("generates");
        assert_eq!(out.program.len(), 1, "only the unconditional execution remains");
    }
}
