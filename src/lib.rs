//! # A Visual Programming Environment for the Navier-Stokes Computer
//!
//! A full Rust reproduction of S. Tomboulian, T. W. Crockett and
//! D. Middleton, *"A Visual Programming Environment for the Navier-Stokes
//! Computer"* (ICASE Report 88-6 / NASA CR-181615, ICPP 1988).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`arch`] | `nsc-arch` | NSC machine description and knowledge base |
//! | [`microcode`] | `nsc-microcode` | the few-thousand-bit instruction word |
//! | [`diagram`] | `nsc-diagram` | pipeline diagrams (the semantic data structures) |
//! | [`checker`] | `nsc-checker` | the architecture rule engine |
//! | [`cert`] | `nsc-cert` | compile certificates + the independent fail-closed verifier |
//! | [`editor`] | `nsc-editor` | the event-driven graphical editor core |
//! | [`codegen`] | `nsc-codegen` | diagrams to microcode, with stream alignment |
//! | [`sim`] | `nsc-sim` | cycle-level node simulator + hypercube system |
//! | [`expr`] | `nsc-expr` | the §3 compilation/allocation problem |
//! | [`cfd`] | `nsc-cfd` | 3-D Poisson Jacobi (Equation 1), SOR, multigrid |
//! | [`mod@env`] | `nsc-core` | the integrated environment, the `Session` compile-and-run pipeline + visual debugger |
//! | [`park`] | `nsc-park` | machine-park job service: queue, schedule, and serve many workloads on one machine |
//! | [`ensemble`] | `nsc-ensemble` | compile-once parameter sweeps over the machine park |
//!
//! See `README.md` for the quickstart, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the paper-versus-measured record.

pub use nsc_arch as arch;
pub use nsc_cert as cert;
pub use nsc_cfd as cfd;
pub use nsc_checker as checker;
pub use nsc_codegen as codegen;
pub use nsc_core as env;
pub use nsc_diagram as diagram;
pub use nsc_editor as editor;
pub use nsc_ensemble as ensemble;
pub use nsc_expr as expr;
pub use nsc_microcode as microcode;
pub use nsc_park as park;
pub use nsc_sim as sim;
