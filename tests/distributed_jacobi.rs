//! The distributed-solver acceptance bar: on an 8-node hypercube the
//! strip-decomposed Jacobi workload must converge to the *same* solution
//! as the serial workload — and it does better than the 1e-9 max-norm
//! requirement: the bits agree exactly, because halo exchange feeds every
//! sweep the same neighbour values the serial stencil sees.

use nsc::arch::HypercubeConfig;
use nsc::cfd::{DistributedJacobiWorkload, JacobiVariant, JacobiWorkload};
use nsc::env::{Session, Workload};
use nsc::sim::NscSystem;

#[test]
fn eight_node_distributed_jacobi_matches_the_serial_solution() {
    let n = 11;
    let (u0, f, exact) = nsc::cfd::grid::manufactured_problem(n);
    let tol = 1e-9;
    let session = Session::nsc_1988();

    let serial = JacobiWorkload {
        u0: u0.clone(),
        f: f.clone(),
        tol,
        max_pairs: 2000,
        variant: JacobiVariant::Full,
    };
    let mut node = session.node();
    let sref = serial.execute(&session, &mut node).expect("serial solve");
    assert!(sref.converged);

    let mut sys = NscSystem::new(HypercubeConfig::new(3), session.kb()); // 8 nodes
    let dist = DistributedJacobiWorkload {
        u0,
        f,
        tol,
        max_pairs: 2000,
        partition: nsc::cfd::PartitionSpec::Auto,
        overlap: true,
    };
    let run = dist.execute(&session, &mut sys).expect("distributed solve");
    assert!(run.converged, "residual {}", run.residual);

    // The acceptance criterion: within 1e-9 max-norm of the serial
    // solution. The implementation guarantees more — identical bits and an
    // identical sweep count — so assert that too.
    assert!(run.u.linf_diff(&sref.u) < 1e-9, "diff {}", run.u.linf_diff(&sref.u));
    assert_eq!(run.sweeps, sref.sweeps, "same convergence history");
    for (a, b) in run.u.data.iter().zip(&sref.u.data) {
        assert_eq!(a.to_bits(), b.to_bits(), "distributed bits diverged from serial");
    }
    assert_eq!(run.residual.to_bits(), sref.residual.to_bits());

    // And both solved the PDE.
    assert!(run.u.linf_diff(&exact) < 0.05, "err {}", run.u.linf_diff(&exact));

    // Every node carried real work and real communication.
    assert!(run.per_node.iter().all(|c| c.flops > 0 && c.comm_ns > 0));
    assert!(run.aggregate_mflops > 0.0);
}
