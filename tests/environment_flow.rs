//! E3 (paper Figure 3): the full component flow across crates — editor
//! input, checker validation, microcode generation, execution — through
//! the public umbrella API only.

use nsc::arch::{AlsKind, FuOp, InPort, PlaneId};
use nsc::checker::diag::has_errors;
use nsc::diagram::{DmaAttrs, FuAssign, IconKind, PadLoc, PadRef, Point};
use nsc::env::VisualEnvironment;
use nsc::sim::{HaltReason, RunOptions};

#[test]
fn edit_check_generate_execute() {
    let env = VisualEnvironment::nsc_1988();
    let mut ed = env.editor("flow");
    ed.set_stream_len(10);
    let src = ed.place_icon(IconKind::Memory { plane: Some(PlaneId(0)) }, Point::new(22, 6));
    let als = ed.place_icon(IconKind::als(AlsKind::Singlet), Point::new(45, 6));
    let dst = ed.place_icon(IconKind::Memory { plane: Some(PlaneId(1)) }, Point::new(70, 6));
    let c1 = ed
        .connect(
            PadLoc::new(src, PadRef::Io),
            PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::A }),
        )
        .expect("wire 1");
    ed.set_dma(c1, DmaAttrs::at_address(0));
    ed.assign_fu(als, 0, FuAssign::unary(FuOp::Sqrt));
    let c2 = ed
        .connect(PadLoc::new(als, PadRef::FuOut { pos: 0 }), PadLoc::new(dst, PadRef::Io))
        .expect("wire 2");
    ed.set_dma(c2, DmaAttrs::at_address(0));

    // The editor's live check is clean of errors.
    assert!(!has_errors(&ed.check_now()));

    let mut doc = ed.doc.clone();
    let mut node = env.node();
    node.mem.plane_mut(PlaneId(0)).write_slice(0, &[4.0, 9.0, 16.0, 25.0]);
    let compiled = env.session().compile(&mut doc).expect("compiles");
    let report = compiled.run(&mut node, &RunOptions::default()).expect("runs");
    let out = &compiled.output;
    assert_eq!(report.stats.halted, HaltReason::Halt);
    assert_eq!(node.mem.plane(PlaneId(1)).read_vec(0, 4), vec![2.0, 3.0, 4.0, 5.0]);

    // Both output representations exist: microcode and pseudo-code.
    assert!(out.program.disassemble(env.kb()).contains("SQRT"));
    assert!(nsc::codegen::emit_pseudocode(&doc).contains("SQRT"));
}

#[test]
fn errors_found_while_editing_also_block_generation() {
    let env = VisualEnvironment::nsc_1988();
    let mut ed = env.editor("blocked");
    // Two writers into one plane — the paper's canonical refusal.
    let a = ed.place_icon(IconKind::als(AlsKind::Singlet), Point::new(25, 4));
    let b = ed.place_icon(IconKind::als(AlsKind::Singlet), Point::new(25, 14));
    let m = ed.place_icon(IconKind::Memory { plane: Some(PlaneId(5)) }, Point::new(60, 8));
    ed.assign_fu(a, 0, FuAssign::with_const(FuOp::Mul, 1.0));
    ed.assign_fu(b, 0, FuAssign::with_const(FuOp::Mul, 2.0));
    let w1 = ed.connect(PadLoc::new(a, PadRef::FuOut { pos: 0 }), PadLoc::new(m, PadRef::Io));
    assert!(w1.is_some());
    let w2 = ed.connect(PadLoc::new(b, PadRef::FuOut { pos: 0 }), PadLoc::new(m, PadRef::Io));
    assert!(w2.is_none(), "the editor refuses the second writer");
    assert!(ed.message.contains("refused"));
    // And the menu never offered it either.
    let targets = ed.legal_targets(PadLoc::new(b, PadRef::FuOut { pos: 0 }));
    assert!(!targets.contains(&PadLoc::new(m, PadRef::Io)));
}

#[test]
fn saved_documents_reload_and_regenerate_identically() {
    let env = VisualEnvironment::nsc_1988();
    let mut doc = nsc::cfd::build_jacobi_document(6, 1e-6, 50, nsc::cfd::JacobiVariant::Full);
    let out1 = env.session().compile(&mut doc).expect("compiles").output;
    // Round-trip through the SAVE format.
    let json = doc.to_json();
    let mut reloaded = nsc::diagram::Document::from_json(&json).expect("parses");
    let out2 = env.session().compile(&mut reloaded).expect("recompiles").output;
    assert_eq!(out1.program.instrs, out2.program.instrs, "identical microcode after reload");
}
