//! Umbrella-crate smoke test: every module re-exported by `nsc` must link,
//! and a representative type from each must be constructible. This guards
//! the workspace wiring itself — a broken re-export or a crate dropped from
//! the dependency graph fails here before anything subtler does.

use nsc::arch::{AlsKind, FuOp, KnowledgeBase, MachineConfig, PlaneId};
use nsc::cfd::{Grid3, JacobiVariant};
use nsc::checker::{Checker, Stage};
use nsc::codegen::emit_pseudocode;
use nsc::diagram::{Document, IconKind, Point};
use nsc::editor::render_ascii;
use nsc::env::VisualEnvironment;
use nsc::expr::{AllocStrategy, Expr};
use nsc::microcode::{BitReader, BitWriter, MicroInstruction};
use nsc::sim::{NodeSim, RunOptions};

#[test]
fn arch_knowledge_base_matches_paper_headline_numbers() {
    let cfg = MachineConfig::nsc_1988();
    assert_eq!(cfg.fu_count(), 32);
    assert_eq!(cfg.peak_mflops(), 640.0);
    let kb = KnowledgeBase::nsc_1988();
    assert!(kb.valid_plane(PlaneId(0)));
}

#[test]
fn microcode_bits_round_trip() {
    let mut w = BitWriter::new();
    w.write(0b1011, 4);
    w.write(7, 3);
    let bytes = w.finish();
    let mut r = BitReader::new(&bytes);
    assert_eq!(r.read(4).unwrap(), 0b1011);
    assert_eq!(r.read(3).unwrap(), 7);

    let kb = KnowledgeBase::nsc_1988();
    let ins = MicroInstruction::empty(&kb);
    let encoded = ins.encode(&kb);
    assert_eq!(MicroInstruction::decode(&kb, &encoded).unwrap(), ins);
}

#[test]
fn diagram_document_and_checker_link() {
    let mut doc = Document::new("smoke");
    let pid = doc.add_pipeline("empty");
    assert!(doc.pipeline(pid).is_some());

    let kb = KnowledgeBase::nsc_1988();
    let checker = Checker::new(kb);
    let diags = checker.check_pipeline(doc.pipeline(pid).unwrap(), Stage::Incremental);
    // An empty pipeline is not an error at the incremental stage.
    assert!(!nsc::checker::diag::has_errors(&diags));
}

#[test]
fn editor_renders_a_placed_icon() {
    let env = VisualEnvironment::nsc_1988();
    let mut ed = env.editor("smoke");
    ed.place_icon(IconKind::als(AlsKind::Singlet), Point::new(40, 8));
    let screen = render_ascii(&ed);
    assert!(!screen.is_empty());
}

#[test]
fn codegen_emits_pseudocode_for_a_generated_document() {
    let env = VisualEnvironment::nsc_1988();
    let mut doc = nsc::cfd::build_jacobi_document(5, 1e-6, 4, JacobiVariant::Full);
    let compiled = env.session().compile(&mut doc).expect("jacobi document compiles");
    assert!(!compiled.program().instrs.is_empty());
    assert!(emit_pseudocode(&doc).contains("pipeline"));
}

#[test]
fn sim_runs_a_generated_program() {
    let env = VisualEnvironment::nsc_1988();
    let mut doc = nsc::cfd::build_jacobi_document(5, 0.0, 1, JacobiVariant::Full);
    let compiled = env.session().compile(&mut doc).expect("compiles");
    let mut node: NodeSim = env.node();
    let report = compiled.run(&mut node, &RunOptions::default()).expect("runs");
    assert!(report.stats.executed > 0);
    assert!(report.counters.cycles > 0);
}

#[test]
fn expr_compiles_and_evaluates_on_host() {
    let expr = Expr::var("a").add(Expr::Const(1.0));
    let host = expr.eval_host(4, &|_| vec![1.0, 2.0, 3.0, 4.0]);
    assert_eq!(host, vec![2.0, 3.0, 4.0, 5.0]);
    assert!(!AllocStrategy::ALL.is_empty());
    let _ = FuOp::Add;
}

#[test]
fn cfd_grid_constructs_with_unit_spacing_convention() {
    let g = Grid3::new(5, 5, 5);
    assert_eq!(g.len(), 125);
    assert!((g.h - 0.25).abs() < 1e-12);
}

#[test]
fn env_document_json_round_trips_through_umbrella_reexports() {
    let doc = nsc::cfd::build_jacobi_document(4, 1e-3, 2, JacobiVariant::Full);
    let back = nsc::diagram::Document::from_json(&doc.to_json()).expect("parses");
    assert_eq!(back, doc);
}
