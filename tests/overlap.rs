//! Property tests for the overlapped sweep engine's split: the
//! interior + boundary-shell windows cover every owned point exactly
//! once for arbitrary spans, partitions and halo specs, and a windowed
//! sweep document is bit-identical to the fused sweep on every point it
//! covers — including the recombined residual.

use nsc::arch::{HypercubeConfig, NodeId};
use nsc::cfd::diagrams::{JacobiGeometry, JacobiVariant, PLANE_U0, PLANE_U1, RESIDUAL_CACHE};
use nsc::cfd::host::JacobiHostState;
use nsc::cfd::nsc_run::load_problem;
use nsc::cfd::{
    build_jacobi_sweep_document_windows, AxisSpan, BlockPartition, Grid3, GridShape, HaloSpec,
    Part, Partition, StripPartition, SweepWindow,
};
use nsc::env::Session;
use nsc::sim::RunOptions;
use proptest::prelude::*;

/// Assert that a part's split windows tile its owned layers exactly once
/// and that the interior window keeps `spec.layers` clear of every ghost
/// face.
fn check_split(p: &Part, axis: usize, spec: &HaloSpec) {
    let sp = &p.spans[axis];
    let split = p.overlap_split(axis, spec);
    let windows: Vec<SweepWindow> = split.windows().collect();
    assert!(!windows.is_empty(), "every part computes something");
    // Disjoint, ascending, covering exactly the owned layers.
    let mut next = sp.lo_ghost;
    for w in &windows {
        assert_eq!(w.start, next, "windows must tile without gap or overlap");
        assert!(w.len > 0);
        next = w.start + w.len;
    }
    assert_eq!(next, sp.lo_ghost + sp.len, "windows must end at the owned range");
    // The interior window's stencils reach no ghost layer.
    if let Some(i) = split.interior {
        if sp.lo_ghost > 0 {
            assert!(i.start >= sp.lo_ghost + spec.layers, "interior reads the low ghosts");
        }
        if sp.hi_ghost > 0 {
            assert!(
                i.start + i.len + spec.layers <= sp.lo_ghost + sp.len,
                "interior reads the high ghosts"
            );
        }
    }
    // Slots are distinct (each window's residual lands in its own word).
    let mut slots: Vec<u64> = windows.iter().map(|w| w.slot).collect();
    slots.sort_unstable();
    slots.dedup();
    assert_eq!(slots.len(), windows.len(), "residual slots must not collide");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn prop_overlap_split_covers_owned_layers_exactly_once(
        start in 0usize..50,
        len in 1usize..40,
        lo_ghost in 0usize..3,
        hi_ghost in 0usize..3,
        layers in 1usize..3,
    ) {
        let sp = AxisSpan { start: start + lo_ghost, len, lo_ghost, hi_ghost };
        let p = Part { node: NodeId(0), spans: [AxisSpan::whole(5), AxisSpan::whole(5), sp] };
        let spec = HaloSpec { layers, faces: [[true; 2]; 3] };
        check_split(&p, 2, &spec);
    }

    #[test]
    fn prop_partition_splits_cover_every_grid_point_exactly_once(
        dim in 0u32..=3,
        nx in 3usize..6,
        ny in 5usize..30,
        nz in 5usize..40,
        plane2d in any::<bool>(),
    ) {
        // Real decompositions: strips of a 3-D volume, blocks of a plane.
        // Part owned ranges tile the grid (asserted by the partition
        // tests), so per-part windows tiling each part's owned layers
        // means every grid point is computed by exactly one window.
        let cube = HypercubeConfig::new(dim);
        let spec = HaloSpec::stencil();
        let shape =
            if plane2d { GridShape::plane2d(ny, nz) } else { GridShape::volume3d(nx, ny, nz) };
        let axis = shape.overlap_axis();
        if let Ok(strips) = StripPartition::new(shape, cube) {
            for p in strips.parts() {
                check_split(p, axis, &spec);
            }
        }
        if dim >= 2 {
            if let Ok(blocks) = BlockPartition::new(shape, cube.torus2d_near_square()) {
                for p in blocks.parts() {
                    check_split(p, axis, &spec);
                    // The column axis cannot be windowed; its faces stay
                    // in the synchronous part of the spec.
                    prop_assert!(spec.without_axis(axis).wants_any());
                }
            }
        }
    }

    #[test]
    fn prop_windowed_sweep_is_bit_identical_to_the_fused_sweep(
        nx in 3usize..5,
        ny in 3usize..5,
        nz in 4usize..9,
        cut_a in 1usize..8,
        cut_b in 1usize..8,
        seed in 0u64..1000,
    ) {
        // Split the slab's layers at up to two random cuts and run the
        // windowed document against the fused one on identical nodes: the
        // written points and the recombined residual must match bit for
        // bit.
        let geo = JacobiGeometry::slab(nx, ny, nz);
        let mut cuts = vec![cut_a.min(nz - 1), cut_b.min(nz - 1)];
        cuts.sort_unstable();
        cuts.dedup();
        let mut windows = Vec::new();
        let mut start = 0;
        for &c in cuts.iter().chain(std::iter::once(&nz)) {
            if c > start {
                windows.push(SweepWindow { start, len: c - start, slot: windows.len() as u64 });
                start = c;
            }
        }

        // A deterministic pseudo-random problem.
        let mut u0 = Grid3::new(nx.max(3), ny.max(3), nz);
        let mut f = Grid3::new(u0.nx, u0.ny, u0.nz);
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for v in u0.data.iter_mut() {
            *v = next();
        }
        for v in f.data.iter_mut() {
            *v = next();
        }

        let session = Session::nsc_1988();
        let opts = RunOptions::default();
        let host = JacobiHostState::new(&u0, &f);
        let run = |windows: &[SweepWindow]| {
            let mut node = session.node();
            load_problem(&mut node, &host, JacobiVariant::Full);
            let prog = session
                .compile(&mut build_jacobi_sweep_document_windows(geo, true, windows))
                .expect("windowed sweep compiles");
            prog.run(&mut node, &opts).expect("windowed sweep runs");
            let out = node.mem.plane(PLANE_U1).read_vec(geo.plane as u64, geo.points as u64);
            let residual = windows
                .iter()
                .map(|w| node.mem.cache(RESIDUAL_CACHE).read(0, w.slot))
                .fold(f64::NEG_INFINITY, f64::max);
            (out, residual)
        };
        let (fused_out, fused_res) = run(&[SweepWindow::whole(nz)]);
        let (split_out, split_res) = run(&windows);
        for w in &windows {
            let (a, b) = (w.start * geo.plane, (w.start + w.len) * geo.plane);
            for (x, y) in fused_out[a..b].iter().zip(&split_out[a..b]) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "window {:?} diverged", w);
            }
        }
        prop_assert_eq!(fused_res.to_bits(), split_res.to_bits(), "residual recombination");
        // The split never touches PLANE_U0 (the read plane).
        prop_assert!(PLANE_U0 != PLANE_U1);
    }
}
