//! Property tests for the hypercube routing invariants the distributed
//! solvers lean on, plus the halo-exchange ghost-cell guarantee: after a
//! distributed run, every ghost plane in node memory holds exactly the
//! bits the serial solver has at that global plane.

use nsc::arch::{HypercubeConfig, NodeId, SubCubeAllocator};
use nsc::cfd::diagrams::PLANE_U0;
use nsc::cfd::host::{jacobi_sweep_host, JacobiHostState};
use nsc::cfd::{
    DistributedJacobiWorkload, Grid3, GridShape, Partition, PartitionSpec, StripPartition,
};
use nsc::env::{Session, Workload};
use nsc::sim::NscSystem;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn prop_ecube_route_length_equals_hops_and_flips_one_bit_per_step(
        dim in 1u32..=6,
        a in any::<u16>(),
        b in any::<u16>(),
    ) {
        let cube = HypercubeConfig::new(dim);
        let mask = (cube.nodes() - 1) as u16;
        let from = NodeId(a & mask);
        let to = NodeId(b & mask);
        let route = cube.ecube_route(from, to);
        prop_assert_eq!(route.len() as u32 - 1, cube.hops(from, to), "minimal route");
        prop_assert_eq!(route.first(), Some(&from));
        prop_assert_eq!(route.last(), Some(&to));
        let mut prev_bit = None;
        for w in route.windows(2) {
            let flipped = w[0].0 ^ w[1].0;
            prop_assert_eq!(flipped.count_ones(), 1, "each step flips exactly one bit");
            // Dimension-ordered: corrected dimensions strictly ascend, so
            // the route is deterministic and deadlock-free.
            let bit = flipped.trailing_zeros();
            if let Some(p) = prev_bit {
                prop_assert!(bit > p, "e-cube corrects dimensions lowest-first");
            }
            prev_bit = Some(bit);
        }
    }

    #[test]
    fn prop_gray_ring_keeps_strip_neighbours_one_hop_apart(
        dim in 0u32..=6,
        planes in 1usize..200,
    ) {
        let cube = HypercubeConfig::new(dim);
        let parts = cube.ring_partition(planes);
        prop_assert_eq!(parts.iter().map(|&(_, l)| l).sum::<usize>(), planes);
        let mut next = 0;
        for (i, &(start, len)) in parts.iter().enumerate() {
            prop_assert_eq!(start, next, "contiguous chunks");
            next = start + len;
            if i + 1 < parts.len() {
                prop_assert_eq!(
                    cube.hops(cube.ring_node(i), cube.ring_node(i + 1)),
                    1,
                    "adjacent chunks on adjacent nodes"
                );
            }
        }
    }

    #[test]
    fn prop_torus_adjacency_is_always_one_hop(
        dim in 0u32..=6,
        row_bits in 0u32..=6,
    ) {
        // Every rows x cols factorization of the cube: distinct
        // torus-adjacent positions, wrap-around included, sit one hop
        // apart.
        let cube = HypercubeConfig::new(dim);
        let row_bits = row_bits.min(dim);
        let t = cube.torus2d(1 << row_bits, 1 << (dim - row_bits));
        for r in 0..t.rows() {
            for c in 0..t.cols() {
                let here = t.node(r, c);
                for n in [
                    t.row_neighbour(r, c, 1),
                    t.row_neighbour(r, c, -1),
                    t.col_neighbour(r, c, 1),
                    t.col_neighbour(r, c, -1),
                ] {
                    if n != here {
                        prop_assert_eq!(cube.hops(here, n), 1, "at ({}, {})", r, c);
                    }
                }
            }
        }
    }

    #[test]
    fn prop_gray_round_trips_on_the_2d_index_map(
        dim in 0u32..=6,
        row_bits in 0u32..=6,
    ) {
        // node() and coords() are inverse bijections built from
        // gray/gray_inverse on each bit field, so every position round
        // trips and every sub-cube node hosts exactly one position.
        let cube = HypercubeConfig::new(dim);
        let row_bits = row_bits.min(dim);
        let t = cube.torus2d(1 << row_bits, 1 << (dim - row_bits));
        let mut seen = std::collections::HashSet::new();
        for r in 0..t.rows() {
            for c in 0..t.cols() {
                let node = t.node(r, c);
                prop_assert_eq!(t.coords(node), Some((r, c)), "round trip at ({}, {})", r, c);
                prop_assert!(seen.insert(node), "{} hosts two positions", node);
            }
        }
        prop_assert_eq!(seen.len(), cube.nodes());
    }

    #[test]
    fn prop_subcube_allocations_are_disjoint(
        dim in 0u32..=6,
        requests in prop::collection::vec(0u32..=6, 1..12),
    ) {
        let cube = HypercubeConfig::new(dim);
        let mut alloc = SubCubeAllocator::new(&cube);
        let mut claimed: Vec<Option<u32>> = vec![None; cube.nodes()];
        let mut granted = 0usize;
        for (gi, &want) in requests.iter().enumerate() {
            let Some(sc) = alloc.allocate(want.min(dim)) else { continue };
            for node in sc.members() {
                prop_assert_eq!(
                    claimed[node.index()].replace(gi as u32),
                    None,
                    "{} handed out twice",
                    node
                );
            }
            granted += sc.nodes();
        }
        prop_assert_eq!(granted + alloc.free_nodes(), cube.nodes(), "no nodes lost");
    }
}

#[test]
fn halo_exchange_ghost_cells_match_the_serial_solver_bit_for_bit() {
    // A known (manufactured + perturbed) grid, two ping-pong pairs on a
    // 4-node cube; then every ghost plane left in node memory must be
    // bit-identical to the serial solver's value of that global plane.
    let n = 9;
    let (mut u0, f, _) = nsc::cfd::grid::manufactured_problem(n);
    for (i, v) in u0.data.iter_mut().enumerate() {
        if !Grid3::new(n, n, n).is_boundary(i % n, (i / n) % n, i / (n * n)) {
            *v = ((i * 37 % 11) as f64 - 5.0) * 0.0625;
        }
    }
    let session = Session::nsc_1988();
    let mut sys = NscSystem::new(HypercubeConfig::new(2), session.kb());
    let w = DistributedJacobiWorkload {
        u0: u0.clone(),
        f: f.clone(),
        tol: 0.0,
        max_pairs: 2,
        partition: PartitionSpec::Strip,
        overlap: false,
    };
    let run = w.execute(&session, &mut sys).expect("distributed run");
    assert_eq!(run.sweeps, 4);

    let mut host = JacobiHostState::new(&u0, &f);
    for _ in 0..4 {
        jacobi_sweep_host(&mut host);
    }
    let serial = host.current();

    let pw = n * n;
    let decomp = StripPartition::new(GridShape::volume3d(n, n, n), sys.cube).expect("decomposes");
    let mut ghosts_checked = 0;
    for (pi, p) in decomp.parts().iter().enumerate() {
        let mem = sys.node(p.node).mem.plane(PLANE_U0);
        let s = p.spans[2];
        let mut check = |local_plane: usize, global_plane: usize| {
            let got = mem.read_vec(decomp.word_offset(pi, 1, local_plane * pw), pw as u64);
            let want = &serial.data[global_plane * pw..(global_plane + 1) * pw];
            for (a, b) in got.iter().zip(want) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "ghost plane {global_plane} of node {} diverged",
                    p.node
                );
            }
            ghosts_checked += 1;
        };
        if s.lo_ghost > 0 {
            check(0, s.start - 1);
        }
        if s.hi_ghost > 0 {
            check(s.local_len() - 1, s.start + s.len);
        }
    }
    assert_eq!(ghosts_checked, 6, "three interior boundaries, two ghosts each");
}
