//! Property tests for the hypercube routing invariants the distributed
//! solvers lean on, plus the halo-exchange ghost-cell guarantee: after a
//! distributed run, every ghost plane in node memory holds exactly the
//! bits the serial solver has at that global plane.

use nsc::arch::{HypercubeConfig, NodeId};
use nsc::cfd::decomp::DecomposedGrid;
use nsc::cfd::diagrams::PLANE_U0;
use nsc::cfd::host::{jacobi_sweep_host, JacobiHostState};
use nsc::cfd::{DistributedJacobiWorkload, Grid3};
use nsc::env::{Session, Workload};
use nsc::sim::NscSystem;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn prop_ecube_route_length_equals_hops_and_flips_one_bit_per_step(
        dim in 1u32..=6,
        a in any::<u16>(),
        b in any::<u16>(),
    ) {
        let cube = HypercubeConfig::new(dim);
        let mask = (cube.nodes() - 1) as u16;
        let from = NodeId(a & mask);
        let to = NodeId(b & mask);
        let route = cube.ecube_route(from, to);
        prop_assert_eq!(route.len() as u32 - 1, cube.hops(from, to), "minimal route");
        prop_assert_eq!(route.first(), Some(&from));
        prop_assert_eq!(route.last(), Some(&to));
        let mut prev_bit = None;
        for w in route.windows(2) {
            let flipped = w[0].0 ^ w[1].0;
            prop_assert_eq!(flipped.count_ones(), 1, "each step flips exactly one bit");
            // Dimension-ordered: corrected dimensions strictly ascend, so
            // the route is deterministic and deadlock-free.
            let bit = flipped.trailing_zeros();
            if let Some(p) = prev_bit {
                prop_assert!(bit > p, "e-cube corrects dimensions lowest-first");
            }
            prev_bit = Some(bit);
        }
    }

    #[test]
    fn prop_gray_ring_keeps_strip_neighbours_one_hop_apart(
        dim in 0u32..=6,
        planes in 1usize..200,
    ) {
        let cube = HypercubeConfig::new(dim);
        let parts = cube.ring_partition(planes);
        prop_assert_eq!(parts.iter().map(|&(_, l)| l).sum::<usize>(), planes);
        let mut next = 0;
        for (i, &(start, len)) in parts.iter().enumerate() {
            prop_assert_eq!(start, next, "contiguous chunks");
            next = start + len;
            if i + 1 < parts.len() {
                prop_assert_eq!(
                    cube.hops(cube.ring_node(i), cube.ring_node(i + 1)),
                    1,
                    "adjacent chunks on adjacent nodes"
                );
            }
        }
    }
}

#[test]
fn halo_exchange_ghost_cells_match_the_serial_solver_bit_for_bit() {
    // A known (manufactured + perturbed) grid, two ping-pong pairs on a
    // 4-node cube; then every ghost plane left in node memory must be
    // bit-identical to the serial solver's value of that global plane.
    let n = 9;
    let (mut u0, f, _) = nsc::cfd::grid::manufactured_problem(n);
    for (i, v) in u0.data.iter_mut().enumerate() {
        if !Grid3::new(n, n, n).is_boundary(i % n, (i / n) % n, i / (n * n)) {
            *v = ((i * 37 % 11) as f64 - 5.0) * 0.0625;
        }
    }
    let session = Session::nsc_1988();
    let mut sys = NscSystem::new(HypercubeConfig::new(2), session.kb());
    let w = DistributedJacobiWorkload { u0: u0.clone(), f: f.clone(), tol: 0.0, max_pairs: 2 };
    let run = w.execute(&session, &mut sys).expect("distributed run");
    assert_eq!(run.sweeps, 4);

    let mut host = JacobiHostState::new(&u0, &f);
    for _ in 0..4 {
        jacobi_sweep_host(&mut host);
    }
    let serial = host.current();

    let pw = n * n;
    let decomp = DecomposedGrid::strip_1d(pw, n, sys.cube).expect("decomposes");
    let mut ghosts_checked = 0;
    for s in &decomp.strips {
        let mem = sys.node(s.node).mem.plane(PLANE_U0);
        let mut check = |local_plane: usize, global_plane: usize| {
            let got = mem.read_vec(decomp.word_offset(1, local_plane), pw as u64);
            let want = &serial.data[global_plane * pw..(global_plane + 1) * pw];
            for (a, b) in got.iter().zip(want) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "ghost plane {global_plane} of node {} diverged",
                    s.node
                );
            }
            ghosts_checked += 1;
        };
        if s.lo_ghost {
            check(0, s.start - 1);
        }
        if s.hi_ghost {
            check(s.local_planes() - 1, s.start + s.len);
        }
    }
    assert_eq!(ghosts_checked, 6, "three interior boundaries, two ghosts each");
}
