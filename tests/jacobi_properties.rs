//! Property-based end-to-end tests: the simulated NSC must agree with the
//! host mirror bit-for-bit on *random* problems, not just the manufactured
//! one — and saved documents must round-trip losslessly.

use nsc::cfd::Grid3;
use nsc::cfd::{
    build_jacobi_document, host::jacobi_sweep_host, host::JacobiHostState, nsc_run, JacobiVariant,
};
use nsc::env::VisualEnvironment;
use nsc::sim::{NodeSim, RunOptions};
use proptest::prelude::*;
use rand::SeedableRng;

fn random_problem(seed: u64, n: usize) -> (Grid3, Grid3) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut u0 = Grid3::new(n, n, n);
    u0.randomize_interior(&mut rng, -1.0, 1.0);
    let mut f = Grid3::new(n, n, n);
    f.randomize_interior(&mut rng, -10.0, 10.0);
    (u0, f)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn prop_simulator_matches_host_mirror_on_random_problems(
        seed in any::<u64>(),
        pairs in 1u32..3,
    ) {
        let n = 5;
        let (u0, f) = random_problem(seed, n);
        let mut node = NodeSim::nsc_1988();
        let run =
            nsc_run::run_jacobi_on_node(&mut node, &u0, &f, 0.0, pairs, JacobiVariant::Full).unwrap();
        let mut host = JacobiHostState::new(&u0, &f);
        for _ in 0..2 * pairs {
            jacobi_sweep_host(&mut host);
        }
        let host_u = host.current();
        for (a, b) in run.u.data.iter().zip(&host_u.data) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn prop_documents_round_trip_through_json(
        n in 4usize..8,
        tol in 1e-9f64..1e-3,
        iters in 1u32..500,
    ) {
        let doc = build_jacobi_document(n, tol, iters, JacobiVariant::Full);
        let back = nsc::diagram::Document::from_json(&doc.to_json()).unwrap();
        prop_assert_eq!(back, doc);
    }

    #[test]
    fn prop_generated_microcode_decodes_to_itself(seed in any::<u64>()) {
        let _ = seed;
        let env = VisualEnvironment::nsc_1988();
        let mut doc = build_jacobi_document(5, 1e-6, 10, JacobiVariant::Full);
        let out = env.session().compile(&mut doc).unwrap().output;
        for ins in &out.program.instrs {
            let bytes = ins.encode(env.kb());
            let back = nsc::microcode::MicroInstruction::decode(env.kb(), &bytes).unwrap();
            prop_assert_eq!(&back, ins);
        }
    }
}

#[test]
fn convergence_loop_is_idempotent_at_the_fixpoint() {
    // Once converged, further sweeps do not move the solution by more
    // than the tolerance (the interrupt-driven loop stops honestly).
    let (u0, f) = random_problem(7, 6);
    let tol = 1e-10;
    let mut node = NodeSim::nsc_1988();
    let run =
        nsc_run::run_jacobi_on_node(&mut node, &u0, &f, tol, 5000, JacobiVariant::Full).unwrap();
    assert!(run.converged);
    let mut host = JacobiHostState::new(&run.u, &f);
    let extra = jacobi_sweep_host(&mut host);
    assert!(extra < tol * 10.0, "post-convergence update {extra}");
}

#[test]
fn run_options_cap_runaway_documents() {
    let env = VisualEnvironment::nsc_1988();
    // tol = 0 never converges; the iteration cap must stop it.
    let mut doc = build_jacobi_document(5, 0.0, 3, JacobiVariant::Full);
    let out = env.session().compile(&mut doc).unwrap().output;
    let mut node = env.node();
    let stats = node.run_program(&out.program, &RunOptions::default()).unwrap();
    // header + 3 pairs x 2 sweeps
    assert_eq!(stats.executed, 1 + 6);
}
