//! T9 (paper §4): "it helps to make the whole visual environment more
//! robust in the face of changes to the machine design. Some changes can
//! be handled merely by updating the knowledge base, with minimal impact
//! on the graphical editor and microcode generator."
//!
//! The same Jacobi document is checked, generated and *executed to
//! identical numerics* against revised machine configurations, with no
//! change to the document or any editor/generator code.

use nsc::arch::MachineConfig;
use nsc::cfd::{build_jacobi_document, grid::manufactured_problem, nsc_run, JacobiVariant};
use nsc::env::VisualEnvironment;
use nsc::sim::{NodeSim, RunOptions};

fn run_on(cfg: MachineConfig) -> Vec<f64> {
    let env = VisualEnvironment::new(cfg);
    let (u0, f, _) = manufactured_problem(6);
    let state = nsc::cfd::JacobiHostState::new(&u0, &f);
    let mut node = NodeSim::new(env.kb().clone());
    nsc_run::load_problem(&mut node, &state, JacobiVariant::Full);
    let mut doc = build_jacobi_document(6, 0.0, 2, JacobiVariant::Full);
    let compiled = env.session().compile(&mut doc).expect("compiles");
    compiled.run(&mut node, &RunOptions::default()).expect("runs");
    node.mem.plane(nsc::cfd::diagrams::PLANE_U0).read_vec(0, 6 * 6 * 6 + 2 * 36)
}

#[test]
fn revised_machines_absorb_the_same_program() {
    let baseline = run_on(MachineConfig::nsc_1988());

    // Revision 1: larger register files, six-tap SDUs, deeper fan-out.
    let mut rev1 = MachineConfig::nsc_1988();
    rev1.name = "NSC rev-B".into();
    rev1.rf_words = 128;
    rev1.sdu.taps_per_unit = 6;
    rev1.switch.max_fanout = 8;
    assert_eq!(run_on(rev1), baseline, "knowledge-base growth is invisible");

    // Revision 2: slower FP pipelines (deeper latencies) — the automatic
    // stream alignment re-derives different queue depths, but numerics
    // are untouched.
    let mut rev2 = MachineConfig::nsc_1988();
    rev2.name = "NSC rev-C".into();
    rev2.latency.short_ops = 5;
    rev2.latency.multiply = 7;
    assert_eq!(run_on(rev2), baseline, "latency changes alter timing, not values");
}

#[test]
fn shrinking_the_machine_is_caught_not_miscompiled() {
    // Removing the SDUs invalidates the document; the environment reports
    // rather than emitting wrong code.
    let mut small = MachineConfig::nsc_1988();
    small.sdu.units = 0;
    let env = VisualEnvironment::new(small);
    let mut doc = build_jacobi_document(6, 1e-6, 10, JacobiVariant::Full);
    assert!(env.session().compile(&mut doc).is_err());
}

#[test]
fn instruction_width_tracks_the_machine() {
    use nsc::microcode::Census;
    let kb88 = nsc::arch::KnowledgeBase::nsc_1988();
    let mut bigger = MachineConfig::nsc_1988();
    bigger.memory.planes = 16; // same
    bigger.cache.caches = 16; // same
    bigger.sdu.units = 4; // two more SDUs
    let kb_big = nsc::arch::KnowledgeBase::new(bigger);
    assert!(
        Census::of_machine(&kb_big).total_bits() > Census::of_machine(&kb88).total_bits(),
        "more hardware, wider instruction word"
    );
}
