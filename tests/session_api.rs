//! The typed stage pipeline's error paths: every way a document can fail
//! between the editor and the machine surfaces as a distinct [`NscError`]
//! variant whose `source()` chain reaches the producing crate's error.

use nsc::arch::{AlsKind, PlaneId};
use nsc::codegen::GenError;
use nsc::diagram::{Document, IconKind};
use nsc::env::{DiagnosticSet, NscError, Session};
use nsc::sim::RunOptions;
use std::error::Error;

mod common;
use common::scale_doc;

#[test]
fn auto_bind_failure_is_its_own_variant_with_the_diagnostics_as_source() {
    let session = Session::nsc_1988();
    // More triplets than the machine owns: unbindable.
    let mut doc = Document::new("too-many");
    let pid = doc.add_pipeline("p");
    for _ in 0..5 {
        doc.pipeline_mut(pid).unwrap().add_icon(IconKind::als(AlsKind::Triplet));
    }
    let err = session.compile(&mut doc).unwrap_err();
    let NscError::BindFailed(ref diags) = err else {
        panic!("expected BindFailed, got {err:?}");
    };
    assert!(!diags.is_empty());
    // The source chain reaches the same diagnostic set.
    let set = err.source().expect("has source").downcast_ref::<DiagnosticSet>().unwrap();
    assert_eq!(set.len(), diags.len());
    assert!(err.to_string().contains("auto-bind failed"));
}

#[test]
fn generation_failure_chains_to_the_generators_error() {
    let session = Session::nsc_1988();
    // A document with no pipelines binds and checks, but has nothing to
    // emit.
    let mut doc = Document::new("empty");
    let err = session.compile(&mut doc).unwrap_err();
    assert!(matches!(err, NscError::Gen(GenError::EmptyProgram)), "{err:?}");
    let gen = err.source().expect("has source").downcast_ref::<GenError>().unwrap();
    assert_eq!(*gen, GenError::EmptyProgram);
}

#[test]
fn instruction_budget_exhaustion_is_an_error_not_a_silent_halt() {
    let session = Session::nsc_1988();
    let mut doc = scale_doc(2.0, 0);
    let compiled = session.compile(&mut doc).expect("compiles");
    let mut node = session.node();
    // Budget of zero: the guard trips before the first instruction.
    let opts = RunOptions { max_instructions: 0, ..Default::default() };
    let err = compiled.run(&mut node, &opts).unwrap_err();
    assert!(matches!(err, NscError::MaxInstructions { executed: 0, limit: 0 }), "{err:?}");
    assert!(err.source().is_none(), "the guard is the root cause");
    // With a sane budget the same program completes.
    let report = compiled.run(&mut node, &RunOptions::default()).expect("runs");
    assert_eq!(report.stats.executed, 1);
}

#[test]
fn stages_are_individually_inspectable() {
    let session = Session::nsc_1988();
    let mut doc = scale_doc(3.0, 0);
    session.auto_bind(&mut doc).expect("binds");
    let warnings = session.check(&doc).expect("no errors");
    let out = session.codegen(&doc).expect("generates");
    assert_eq!(out.program.len(), 1);
    // compile = the same three stages chained.
    let compiled = session.compile(&mut doc.clone()).expect("compiles");
    assert_eq!(compiled.program().instrs, out.program.instrs);
    assert_eq!(compiled.warnings.len(), warnings.len());
}

#[test]
fn the_compiled_program_runs_and_reports_per_run_counters() {
    let session = Session::nsc_1988();
    let mut doc = scale_doc(10.0, 0);
    let compiled = session.compile(&mut doc).expect("compiles");
    let mut node = session.node();
    node.mem.plane_mut(PlaneId(0)).write_slice(0, &[1.0, 2.0, 3.0]);
    let first = compiled.run(&mut node, &RunOptions::default()).expect("runs");
    assert_eq!(node.mem.plane(PlaneId(1)).read_vec(0, 3), vec![10.0, 20.0, 30.0]);
    // Counters are per-run deltas even on a reused node.
    let second = compiled.run(&mut node, &RunOptions::default()).expect("runs again");
    assert_eq!(first.counters.instructions, 1);
    assert_eq!(second.counters.instructions, 1, "delta, not lifetime total");
    assert_eq!(node.counters.instructions, 2, "the node still accumulates");
}
