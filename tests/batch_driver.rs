//! `Session::run_batch`: many compiled documents executed across a pool
//! of nodes in one call, with per-run reports and aggregated counters —
//! the acceptance gate for the batch session driver.

use nsc::arch::PlaneId;
use nsc::diagram::Document;
use nsc::env::{run_compiled_on_pool, NscError, Session};
use nsc::sim::RunOptions;

mod common;
use common::scale_doc;

#[test]
fn five_documents_run_across_two_nodes_in_one_call() {
    let session = Session::nsc_1988();
    // Document i multiplies by (i+1) and writes to its own address.
    let mut docs: Vec<Document> =
        (0..5).map(|i| scale_doc((i + 1) as f64, 100 * i as u64)).collect();
    let mut nodes = vec![session.node(), session.node()];
    for node in &mut nodes {
        node.mem.plane_mut(PlaneId(0)).write_slice(0, &[1.0, 2.0, 3.0]);
    }

    let report = session.run_batch(&mut docs, &mut nodes, &RunOptions::default()).expect("batch");

    assert_eq!(report.runs.len(), 5, "one report per document, in order");
    assert_eq!(report.nodes_used, 2);
    // Round-robin: document i ran on node i % 2; its output is at its own
    // address on that node's plane 1.
    for i in 0..5u64 {
        let k = (i + 1) as f64;
        let plane = nodes[(i % 2) as usize].mem.plane(PlaneId(1));
        assert_eq!(plane.read_vec(100 * i, 3), vec![k, 2.0 * k, 3.0 * k], "document {i} output");
    }
    // Aggregation: work sums across all five runs; elapsed cycles are the
    // busiest node's sequential total, which is less than the grand sum.
    assert_eq!(report.total.instructions, 5);
    let work_sum: u64 = report.runs.iter().map(|r| r.counters.flops).sum();
    assert_eq!(report.total.flops, work_sum);
    let cycle_sum: u64 = report.runs.iter().map(|r| r.counters.cycles).sum();
    assert!(report.total.cycles < cycle_sum, "parallel nodes overlap in time");
    assert!(report.runs.iter().all(|r| r.counters.cycles > 0));
    assert!(report.mflops(session.kb().config().clock_hz) > 0.0);
}

#[test]
fn a_failing_document_aborts_the_batch_with_its_index() {
    let session = Session::nsc_1988();
    let mut docs = vec![scale_doc(1.0, 0), scale_doc(2.0, 100), Document::new("empty")];
    let mut nodes = vec![session.node(), session.node()];
    let err = session.run_batch(&mut docs, &mut nodes, &RunOptions::default()).unwrap_err();
    let NscError::Batch { doc, ref source } = err else {
        panic!("expected Batch, got {err:?}");
    };
    assert_eq!(doc, 2, "the empty document is the culprit");
    assert!(matches!(**source, NscError::Gen(_)));
}

#[test]
fn a_runtime_failure_reports_the_lowest_failing_document() {
    let session = Session::nsc_1988();
    let mut docs: Vec<Document> = (0..4).map(|i| scale_doc(1.0, 100 * i as u64)).collect();
    // One node makes the failure order deterministic: its queue runs in
    // submission order, document 0 trips the zero instruction budget, and
    // the cancellation skips the other three.
    let mut nodes = vec![session.node()];
    let opts = RunOptions { max_instructions: 0, ..Default::default() };
    let err = session.run_batch(&mut docs, &mut nodes, &opts).unwrap_err();
    let NscError::Batch { doc, ref source } = err else {
        panic!("expected Batch, got {err:?}");
    };
    assert_eq!(doc, 0);
    assert!(matches!(**source, NscError::MaxInstructions { .. }));
    assert_eq!(nodes[0].counters.instructions, 0, "nothing ran to completion");
}

#[test]
fn empty_inputs_are_handled_without_threads() {
    let session = Session::nsc_1988();
    let report = session
        .run_batch(&mut [], &mut [session.node()], &RunOptions::default())
        .expect("empty batch");
    assert!(report.runs.is_empty());
    assert_eq!(report.nodes_used, 0);

    let mut docs = vec![scale_doc(1.0, 0)];
    let err = session.run_batch(&mut docs, &mut [], &RunOptions::default()).unwrap_err();
    assert!(matches!(err, NscError::EmptyPool));
}

#[test]
fn an_explicit_pool_drives_only_its_own_nodes() {
    // The per-embedding shape: four nodes, a pool naming nodes 2 and 1 (in
    // that order) — program i runs on pool[i], the other nodes stay idle.
    let session = Session::nsc_1988();
    let compiled: Vec<_> = (0..2)
        .map(|i| {
            let mut doc = scale_doc((i + 2) as f64, 0);
            session.compile(&mut doc).expect("compiles")
        })
        .collect();
    let programs: Vec<_> = compiled.iter().collect();
    let mut nodes: Vec<_> = (0..4).map(|_| session.node()).collect();
    for node in &mut nodes {
        node.mem.plane_mut(PlaneId(0)).write_slice(0, &[1.0, 1.0, 1.0]);
    }
    let report =
        run_compiled_on_pool(&programs, &mut nodes, &[2, 1], &RunOptions::default()).expect("pool");
    assert_eq!(report.runs.len(), 2);
    assert_eq!(report.nodes_used, 2);
    assert_eq!(nodes[2].mem.plane(PlaneId(1)).read_vec(0, 3), vec![2.0, 2.0, 2.0]);
    assert_eq!(nodes[1].mem.plane(PlaneId(1)).read_vec(0, 3), vec![3.0, 3.0, 3.0]);
    assert_eq!(nodes[0].counters.instructions, 0, "outside the pool");
    assert_eq!(nodes[3].counters.instructions, 0, "outside the pool");

    // An empty pool with work to do is an error.
    let err = run_compiled_on_pool(&programs, &mut nodes, &[], &RunOptions::default()).unwrap_err();
    assert!(matches!(err, NscError::EmptyPool));
}

#[test]
fn a_pool_larger_than_the_batch_leaves_spare_nodes_idle() {
    let session = Session::nsc_1988();
    let mut docs = vec![scale_doc(3.0, 0), scale_doc(4.0, 0)];
    let mut nodes: Vec<_> = (0..4).map(|_| session.node()).collect();
    for node in &mut nodes {
        node.mem.plane_mut(PlaneId(0)).write_slice(0, &[1.0, 1.0, 1.0]);
    }
    let report = session.run_batch(&mut docs, &mut nodes, &RunOptions::default()).expect("batch");
    assert_eq!(report.runs.len(), 2);
    assert_eq!(report.nodes_used, 2);
    assert_eq!(nodes[2].counters.instructions, 0, "spare nodes untouched");
    assert_eq!(nodes[3].counters.instructions, 0);
}
