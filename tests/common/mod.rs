//! Shared helpers for the root integration tests.

use nsc::arch::{AlsKind, FuOp, InPort, PlaneId};
use nsc::diagram::{DmaAttrs, Document, FuAssign, IconKind, PadLoc, PadRef};

/// A tiny runnable document: plane 0 -> (x * k) -> plane 1 at `addr`.
pub fn scale_doc(k: f64, addr: u64) -> Document {
    let mut doc = Document::new(format!("scale-x{k}"));
    let pid = doc.add_pipeline("scale");
    let d = doc.pipeline_mut(pid).unwrap();
    d.stream_len = 3;
    let src = d.add_icon(IconKind::Memory { plane: Some(PlaneId(0)) });
    let als = d.add_icon(IconKind::als(AlsKind::Singlet));
    let dst = d.add_icon(IconKind::Memory { plane: Some(PlaneId(1)) });
    d.connect(
        PadLoc::new(src, PadRef::Io),
        PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::A }),
        Some(DmaAttrs::at_address(0)),
    )
    .unwrap();
    d.assign_fu(als, 0, FuAssign::with_const(FuOp::Mul, k)).unwrap();
    d.connect(
        PadLoc::new(als, PadRef::FuOut { pos: 0 }),
        PadLoc::new(dst, PadRef::Io),
        Some(DmaAttrs::at_address(addr)),
    )
    .unwrap();
    doc
}
