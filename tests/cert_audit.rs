//! The certificate layer's acceptance test, driven from the umbrella
//! crate: all four distributed workloads, the cavity, and a full
//! ensemble sweep run through the park with the spot-audit policy at
//! fraction 1.0 — then every collected certificate is re-verified
//! *offline* by `nsc::cert::verify`, which never links the engine's
//! checker, code generator or simulator. Honest certificates are
//! accepted; mutated ones are rejected, unsealed mutations by the seal
//! and resealed forgeries by the specific obligation they break.

use nsc::cert::{verify, CompilePath, ConstraintKind, Expected};
use nsc::cfd::grid::manufactured_problem;
use nsc::cfd::{
    CavityWorkload, DistributedJacobiWorkload, DistributedMultigridWorkload,
    DistributedSorWorkload, MgOptions, PartitionSpec,
};
use nsc::env::{certify::machine_limits, Session};
use nsc::park::{Job, MachinePark, SchedPolicy};

/// What the auditor independently knows: the machine the park runs.
fn expected(session: &Session) -> Expected {
    Expected { machine: Some(machine_limits(session.kb().config())), ..Default::default() }
}

fn jacobi(n: usize) -> DistributedJacobiWorkload {
    let (u0, f, _) = manufactured_problem(n);
    DistributedJacobiWorkload {
        u0,
        f,
        tol: 1e-3,
        max_pairs: 50,
        partition: PartitionSpec::Auto,
        overlap: false,
    }
}

fn sor(n: usize) -> DistributedSorWorkload {
    let (u0, f, _) = manufactured_problem(n);
    DistributedSorWorkload {
        u0,
        f,
        omega: 1.5,
        tol: 1e-3,
        max_sweeps: 50,
        partition: PartitionSpec::Auto,
        overlap: false,
    }
}

fn multigrid(n: usize) -> DistributedMultigridWorkload {
    let (u0, f, _) = manufactured_problem(n);
    DistributedMultigridWorkload {
        u0,
        f,
        tol: 1e-8,
        max_cycles: 5,
        opts: MgOptions::default(),
        overlap: false,
    }
}

fn cavity(n: usize) -> CavityWorkload {
    let mut w = CavityWorkload::new(n, 10.0, 3);
    w.psi_tol = 1e-6;
    w
}

/// All four distributed workloads plus the cavity pass a 100% audit on
/// one shared machine, and every collected certificate re-verifies
/// offline — bound to its lease, its seal intact.
#[test]
fn distributed_workloads_and_cavity_pass_a_full_audit() {
    let session = Session::nsc_1988();
    let want = expected(&session);
    let mut park = MachinePark::new(session, 2).with_audit_fraction(1.0);
    park.submit(Job::new("ada", 2, jacobi(8))).expect("submit jacobi");
    park.submit(Job::new("grace", 1, sor(6))).expect("submit sor");
    park.submit(Job::new("mary", 2, multigrid(17))).expect("submit multigrid");
    park.submit(Job::new("ada", 1, cavity(9))).expect("submit cavity");
    let report = park.run(SchedPolicy::Backfill).expect("the honest batch passes its audit");
    assert_eq!(report.audited_jobs, 4, "every job audited at fraction 1.0");
    assert!(report.audited_certs > 0);

    // The offline audit: re-verify everything the park collected, with
    // nothing but the certificates and the pinned machine limits.
    let mut total = 0usize;
    let mut with_topology = 0usize;
    for id in 0..4 {
        let certs = &park.outcome(id).expect("outcome kept").certificates;
        // Job 1 is the block-SOR *host baseline*: it compiles nothing
        // through the session, so an empty certificate set is honest.
        // Every NSC-compiled workload must have left a trail.
        if id != 1 {
            assert!(!certs.is_empty(), "job {id} emitted certificates");
        }
        for cert in certs {
            let lease = cert.lease.as_ref().expect("park stamped the lease");
            assert!(lease.dimension <= 2, "sub-cube of the 4-node machine");
            let report = verify(cert, &want).expect("honest certificate verifies");
            assert!(report.obligations > 0);
            if !cert.routes.is_empty() {
                assert!(!cert.coverage.is_empty(), "routes travel with a coverage proof");
                with_topology += 1;
            }
            total += 1;
        }
    }
    assert_eq!(total, report.audited_certs, "the audit covered every collected certificate");
    assert!(
        with_topology > 0,
        "multi-node sweeps staple halo routes and window coverage to their certificates"
    );
}

/// A full ensemble sweep passes the audit, its certificates distinguish
/// the compile paths (full vs cached vs rebind), and they re-verify
/// offline.
#[test]
fn ensemble_sweep_passes_a_full_audit() {
    let session = Session::nsc_1988();
    let want = expected(&session);
    let mut park = MachinePark::new(session, 2).with_audit_fraction(1.0);
    let sweep = nsc::ensemble::Sweep::new("audit study")
        .axis("re", [1.0, 10.0, 50.0, 100.0])
        .axis("steps", [1.0, 2.0]);
    let report = sweep
        .run(&mut park, SchedPolicy::Backfill, |point| {
            let w = CavityWorkload::new(9, point.value("re"), point.value("steps") as usize);
            Ok(Job::new("study", 0, w))
        })
        .expect("the honest sweep passes its audit");
    assert_eq!(report.audited_jobs, report.members.len(), "every member audited");

    let mut emitted = 0usize;
    let mut cached = 0usize;
    for member in &report.members {
        assert!(!member.certificates.is_empty(), "member {} emitted certificates", member.index);
        for cert in &member.certificates {
            verify(cert, &want).expect("honest certificate verifies");
            if cert.compile_path != CompilePath::Full {
                cached += 1;
            }
            emitted += 1;
        }
    }
    assert_eq!(emitted, report.audited_certs);
    assert!(
        cached > 0,
        "after the first member the cache serves compiles, and its certificates say so"
    );
}

/// Certificates from a *real* run reject tampering the same way the
/// synthetic proptest mutants do: unsealed mutations trip the seal,
/// resealed forgeries trip the obligation they break.
#[test]
fn tampered_run_certificates_are_rejected() {
    let session = Session::nsc_1988();
    let want = expected(&session);
    let mut park = MachinePark::new(session, 2).with_audit_fraction(1.0);
    park.submit(Job::new("ada", 2, jacobi(8))).expect("submit");
    park.run(SchedPolicy::Fifo).expect("honest run passes");
    let certs = &park.outcome(0).expect("outcome kept").certificates;

    // An unsealed census inflation is caught by the seal alone.
    let mut forged = (**certs.first().expect("at least one certificate")).clone();
    forged.census.active_fus += 1;
    let v = verify(&forged, &want).unwrap_err();
    assert_eq!(v.kind, ConstraintKind::SealIntegrity);

    // Resealing hides nothing: the inconsistent redundant total stays.
    let v = verify(&forged.sealed(), &want).unwrap_err();
    assert_eq!(v.kind, ConstraintKind::CensusTotals);

    // A detour spliced into a real halo route is rejected even resealed.
    let routed = certs
        .iter()
        .find(|c| c.routes.iter().any(|r| r.path.len() >= 2))
        .expect("the 4-node jacobi exchanges halos");
    let mut forged = (**routed).clone();
    let route = forged.routes.iter_mut().find(|r| r.path.len() >= 2).expect("checked");
    let first = route.path[0];
    let second = route.path[1];
    route.path.splice(1..1, [second, first]);
    let v = verify(&forged.sealed(), &want).unwrap_err();
    assert_eq!(v.kind, ConstraintKind::RouteMinimal);

    // A wrong machine claim is caught against the pinned limits.
    let mut forged = (**certs.first().expect("checked")).clone();
    forged.machine.fu_count *= 2;
    let v = verify(&forged.sealed(), &want).unwrap_err();
    assert_eq!(v.kind, ConstraintKind::CertWellFormed);
}
